"""Tests for the twelve calibrated benchmark profiles."""

import pytest

from repro.analysis.tables import PAPER_TABLE6
from repro.workloads.profiles import PROFILES, benchmark_names, get_profile

PAPER_BENCHMARKS = {
    "bzip", "gcc", "mcf", "perl",          # SPECint
    "equake", "swim", "applu", "lucas",    # SPECfp
    "apache", "zeus", "sjbb", "oltp",      # commercial
}


class TestRoster:
    def test_all_twelve_present(self):
        assert set(benchmark_names()) == PAPER_BENCHMARKS

    def test_suites(self):
        suites = {p.suite for p in PROFILES.values()}
        assert suites == {"SPECint", "SPECfp", "commercial"}
        assert sum(p.suite == "SPECint" for p in PROFILES.values()) == 4
        assert sum(p.suite == "SPECfp" for p in PROFILES.values()) == 4
        assert sum(p.suite == "commercial" for p in PROFILES.values()) == 4

    def test_reference_table_covers_roster(self):
        assert set(PAPER_TABLE6) == PAPER_BENCHMARKS

    def test_unknown_profile(self):
        with pytest.raises(ValueError):
            get_profile("linpack")

    def test_descriptions_present(self):
        for profile in PROFILES.values():
            assert len(profile.description) > 10


class TestCalibrationStructure:
    def test_streaming_benchmarks_are_miss_dominated(self):
        """swim/applu/lucas stream through footprints far larger than
        the 16 MB cache (Table 6's 13-40 misses per kilo-instruction)."""
        for name in ("swim", "applu", "lucas"):
            spec = get_profile(name).spec
            assert spec.stream_fraction >= 0.8
            assert spec.stream_blocks * 64 > 16 * 2**20

    def test_int_benchmarks_fit_in_cache(self):
        for name in ("bzip", "gcc", "perl"):
            spec = get_profile(name).spec
            assert spec.hot_blocks * 64 < 4 * 2**20
            assert spec.stream_fraction == 0.0

    def test_mcf_is_pointer_chasing(self):
        spec = get_profile("mcf").spec
        assert spec.dependent_fraction >= 0.5
        assert spec.hot_blocks * 64 > 8 * 2**20  # large footprint
        assert not spec.scatter  # contiguous arrays

    def test_equake_mixes_reuse_and_streaming(self):
        spec = get_profile("equake").spec
        assert spec.stream_fraction > 0.3
        assert spec.hot_blocks * 64 > 8 * 2**20

    def test_request_rates_ordered_like_paper(self):
        """Table 6 column 2: gcc and mcf have the highest L2 request
        rates; perl the lowest."""
        rates = {name: get_profile(name).l2_requests_per_kinstr
                 for name in PROFILES}
        assert rates["mcf"] > rates["bzip"]
        assert rates["gcc"] > rates["bzip"]
        assert rates["perl"] == min(rates.values())

    def test_commercial_profiles_have_cold_tail(self):
        for name in ("apache", "zeus", "sjbb", "oltp"):
            assert get_profile(name).spec.cold_fraction > 0

"""Tests for replacement policies."""

import pytest
from hypothesis import given, strategies as st

from repro.cache.replacement import (
    FrequencyPolicy,
    LIPPolicy,
    LRUPolicy,
    RandomPolicy,
    make_policy,
)


class TestLRU:
    def test_initial_victim_is_way_zero(self):
        assert LRUPolicy(4).victim() == 0

    def test_touch_moves_to_mru(self):
        p = LRUPolicy(4)
        p.touch(0)
        assert p.victim() == 1

    def test_full_rotation(self):
        p = LRUPolicy(3)
        for way in (0, 1, 2):
            p.touch(way)
        assert p.victim() == 0
        p.touch(0)
        assert p.victim() == 1

    def test_insert_counts_as_touch(self):
        p = LRUPolicy(2)
        p.insert(0)
        assert p.victim() == 1

    def test_invalid_ways(self):
        with pytest.raises(ValueError):
            LRUPolicy(0)

    @given(st.lists(st.integers(min_value=0, max_value=3), max_size=100))
    def test_matches_reference_model(self, touches):
        """The victim is always the least-recently-touched way."""
        ways = 4
        p = LRUPolicy(ways)
        reference = list(range(ways))  # LRU first
        for way in touches:
            p.touch(way)
            reference.remove(way)
            reference.append(way)
        assert p.victim() == reference[0]


class TestFrequency:
    def test_untouched_way_is_victim(self):
        p = FrequencyPolicy(4)
        p.touch(0)
        p.touch(1)
        p.touch(2)
        assert p.victim() == 3

    def test_least_frequent_evicted(self):
        p = FrequencyPolicy(2)
        for _ in range(5):
            p.touch(0)
        p.touch(1)
        assert p.victim() == 1

    def test_new_insert_preferred_victim_over_hot_block(self):
        p = FrequencyPolicy(2)
        for _ in range(10):
            p.touch(0)
        p.insert(1)
        assert p.victim() == 1

    def test_aging_halves_counts_at_saturation(self):
        p = FrequencyPolicy(2)
        for _ in range(FrequencyPolicy.SATURATION + 5):
            p.touch(0)
        # After aging, way 0's count is bounded, not monotonically huge.
        assert p._counts[0] <= FrequencyPolicy.SATURATION

    def test_frequency_retains_hot_block_against_stream(self):
        """The equake effect: a frequently-touched way survives a stream
        of single-use insertions, which LRU would not guarantee."""
        p = FrequencyPolicy(4)
        for _ in range(20):
            p.touch(0)
        for _ in range(10):
            victim = p.victim()
            assert victim != 0
            p.insert(victim)


class TestLIP:
    def test_insert_lands_at_lru(self):
        p = LIPPolicy(4)
        for way in (0, 1, 2, 3):
            p.touch(way)
        p.insert(0)  # re-insert way 0 at the LRU end
        assert p.victim() == 0

    def test_touch_promotes_to_mru(self):
        p = LIPPolicy(2)
        p.touch(0)
        p.touch(1)
        p.insert(0)       # way 0 to LRU
        p.touch(0)        # reuse promotes it
        assert p.victim() == 1

    def test_stream_evicts_itself_not_the_reused_way(self):
        """The DNUCA insert-at-tail analogy: single-use insertions churn
        one slot while the touched way survives."""
        p = LIPPolicy(4)
        for way in (0, 1, 2, 3):
            p.touch(way)
        p.touch(0)  # the protected hot way
        for _ in range(10):
            victim = p.victim()
            assert victim != 0
            p.insert(victim)


class TestRandom:
    def test_victim_in_range(self):
        p = RandomPolicy(4, seed=1)
        for _ in range(50):
            assert 0 <= p.victim() < 4

    def test_deterministic_with_seed(self):
        a = [RandomPolicy(8, seed=3).victim() for _ in range(10)]
        b = [RandomPolicy(8, seed=3).victim() for _ in range(10)]
        # Fresh policies with the same seed produce the same first victim.
        assert a[0] == b[0]


class TestFactory:
    @pytest.mark.parametrize("name,cls", [
        ("lru", LRUPolicy),
        ("lip", LIPPolicy),
        ("frequency", FrequencyPolicy),
        ("random", RandomPolicy),
    ])
    def test_make_policy(self, name, cls):
        assert isinstance(make_policy(name, 4), cls)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown replacement policy"):
            make_policy("mru", 4)

"""Tests for the markdown report builder."""

import pytest

from repro.analysis.experiments import run_design_grid
from repro.analysis.report import build_report


@pytest.fixture(scope="module")
def report():
    benchmarks = ("perl", "lucas")
    main = run_design_grid(designs=("SNUCA2", "DNUCA", "TLC"),
                           benchmarks=benchmarks, n_refs=2_500)
    family = run_design_grid(
        designs=("SNUCA2", "TLC", "TLCopt1000", "TLCopt500", "TLCopt350"),
        benchmarks=benchmarks, n_refs=2_500)
    return build_report(main_grid=main, family_grid=family)


class TestReportStructure:
    def test_all_sections_present(self, report):
        for heading in (
            "# Reproduction report",
            "## Signal integrity",
            "## Table 2",
            "## Figure 5",
            "## Figure 6",
            "## Table 6",
            "## Table 7",
            "## Table 8",
            "## Table 9",
            "## Figure 7",
            "## Figure 8",
        ):
            assert heading in report

    def test_contains_benchmarks(self, report):
        assert "perl" in report and "lucas" in report

    def test_contains_all_designs(self, report):
        for design in ("TLC", "TLCopt350", "SNUCA2", "DNUCA"):
            assert design in report

    def test_markdown_tables_well_formed(self, report):
        lines = report.splitlines()
        for i, line in enumerate(lines):
            if line.startswith("|") and set(line.strip("| ")) <= {"-", "|", " "}:
                header = lines[i - 1]
                assert header.count("|") == line.count("|"), (header, line)

    def test_signal_integrity_verdicts(self, report):
        assert report.count("PASS") >= 3

    def test_paper_reference_values_embedded(self, report):
        # Table 7's published totals appear alongside measured ones.
        assert "110" in report and "91" in report

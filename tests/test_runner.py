"""Tests for the parallel runner and its content-addressed result cache."""

import dataclasses
import json

import pytest

from repro.analysis.experiments import run_design_grid
from repro.analysis.runner import (
    CellSpec,
    ResultCache,
    cache_key,
    code_version_stamp,
    execute_cells,
    run_cell,
    run_grid,
)
from repro.analysis.storage import result_to_dict
from repro.sim.processor import ProcessorConfig
from repro.tech import Technology
from repro.workloads.synthetic import TraceSpec

DESIGNS = ("SNUCA2", "TLC")
BENCHMARKS = ("perl", "bzip")
N_REFS = 2_000


def grid_payload(grid) -> str:
    """A canonical byte string of every cell, for exact comparisons."""
    return json.dumps(
        {f"{d}/{b}": result_to_dict(r) for (d, b), r in sorted(grid.results.items())},
        sort_keys=True)


@pytest.fixture(scope="module")
def serial_grid():
    return run_design_grid(designs=DESIGNS, benchmarks=BENCHMARKS,
                           n_refs=N_REFS, workers=1)


class TestParallelMatchesSerial:
    def test_parallel_grid_byte_identical(self, serial_grid):
        parallel = run_design_grid(designs=DESIGNS, benchmarks=BENCHMARKS,
                                   n_refs=N_REFS, workers=2)
        assert grid_payload(parallel) == grid_payload(serial_grid)

    def test_matches_legacy_shared_trace_semantics(self, serial_grid):
        """Regenerating the trace per cell equals sharing one trace."""
        from repro.sim.system import run_system

        legacy = run_system("TLC", "perl", n_refs=N_REFS, seed=7)
        assert legacy == serial_grid.result("TLC", "perl")

    def test_parallel_suite_matches_serial(self):
        from repro.analysis.experiments import run_benchmark_suite

        serial = run_benchmark_suite("TLC", benchmarks=BENCHMARKS,
                                     n_refs=N_REFS, workers=1)
        parallel = run_benchmark_suite("TLC", benchmarks=BENCHMARKS,
                                       n_refs=N_REFS, workers=2)
        assert serial == parallel


class TestResultCache:
    def test_cold_run_stores_every_cell(self, tmp_path, serial_grid):
        cache = ResultCache(tmp_path)
        grid = run_design_grid(designs=DESIGNS, benchmarks=BENCHMARKS,
                               n_refs=N_REFS, cache=cache)
        assert cache.stores == len(DESIGNS) * len(BENCHMARKS)
        assert cache.hits == 0
        assert grid_payload(grid) == grid_payload(serial_grid)

    def test_warm_run_simulates_nothing(self, tmp_path, serial_grid):
        cache = ResultCache(tmp_path)
        run_design_grid(designs=DESIGNS, benchmarks=BENCHMARKS,
                        n_refs=N_REFS, cache=cache)
        warm = ResultCache(tmp_path)
        grid = run_design_grid(designs=DESIGNS, benchmarks=BENCHMARKS,
                               n_refs=N_REFS, cache=warm)
        assert warm.hits == len(DESIGNS) * len(BENCHMARKS)
        assert warm.stores == 0
        assert grid_payload(grid) == grid_payload(serial_grid)

    def test_cache_hit_returns_identical_result(self, tmp_path):
        cell = CellSpec(design="TLC", benchmark="perl", n_refs=N_REFS, seed=7)
        cache = ResultCache(tmp_path)
        first = execute_cells([cell], cache=cache)[0]
        second = execute_cells([cell], cache=ResultCache(tmp_path))[0]
        assert first == second

    def test_overlapping_grids_share_cells(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_grid(designs=("SNUCA2", "TLC"), benchmarks=("perl",),
                 n_refs=N_REFS, cache=cache)
        run_grid(designs=("SNUCA2", "TLC", "DNUCA"), benchmarks=("perl",),
                 n_refs=N_REFS, cache=cache)
        assert cache.hits == 2      # SNUCA2 and TLC reused
        assert cache.stores == 3    # plus DNUCA simulated once

    def test_corrupt_entry_is_a_miss_and_heals(self, tmp_path):
        cell = CellSpec(design="TLC", benchmark="perl", n_refs=N_REFS, seed=7)
        cache = ResultCache(tmp_path)
        result = execute_cells([cell], cache=cache)[0]
        path = cache.path_for(cache_key(cell))
        path.write_text("{ not json")
        healed = ResultCache(tmp_path)
        assert execute_cells([cell], cache=healed)[0] == result
        assert healed.hits == 0 and healed.stores == 1
        assert healed.quarantined == 1
        assert json.loads(path.read_text())["result"]["design"] == "TLC"

    def test_cache_accepts_plain_directory_path(self, tmp_path):
        run_grid(designs=("TLC",), benchmarks=("perl",), n_refs=N_REFS,
                 cache=str(tmp_path))
        assert list(tmp_path.rglob("*.json"))


class TestCacheIntegrity:
    """Corrupt entries raise typed errors from load() and quarantine in get()."""

    @pytest.fixture(scope="class")
    def warm(self, tmp_path_factory):
        """A cache holding one real entry, plus its cell and key."""
        root = tmp_path_factory.mktemp("integrity-cache")
        cell = CellSpec(design="TLC", benchmark="perl", n_refs=N_REFS, seed=7)
        cache = ResultCache(root)
        result = execute_cells([cell], cache=cache)[0]
        return root, cell, cache_key(cell), result

    CORRUPTIONS = {
        "not_json": lambda text: "{ definitely not json",
        "truncated": lambda text: text[: len(text) // 2],
        "wrong_type": lambda text: json.dumps(["a", "list"]),
        "wrong_format_version": lambda text: json.dumps(
            dict(json.loads(text), cache_format=999)),
        "missing_result": lambda text: json.dumps(
            {k: v for k, v in json.loads(text).items() if k != "result"}),
        "bit_rot_inside_valid_json": lambda text: json.dumps(
            dict(json.loads(text),
                 result=dict(json.loads(text)["result"],
                             cycles=json.loads(text)["result"]["cycles"] + 1))),
        "invalid_result_fields": lambda text: json.dumps(
            dict(json.loads(text), result={"design": "TLC"})),
        "empty_file": lambda text: "",
    }

    @pytest.mark.parametrize("corruption", sorted(CORRUPTIONS))
    def test_load_raises_typed_error(self, warm, tmp_path, corruption):
        from repro.analysis.storage import CacheCorruptionError

        root, cell, key, _ = warm
        cache = ResultCache(root)
        original = cache.path_for(key).read_text()
        # Work on a copy so parametrized cases don't interfere.
        copy = ResultCache(tmp_path)
        path = copy.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.CORRUPTIONS[corruption](original))
        with pytest.raises(CacheCorruptionError):
            copy.load(key)

    def test_bit_rot_defeats_field_validation_but_not_digest(self, warm,
                                                             tmp_path):
        """The motivating case: valid JSON, valid fields, wrong value."""
        from repro.analysis.storage import CacheCorruptionError

        root, cell, key, result = warm
        original = ResultCache(root).path_for(key).read_text()
        copy = ResultCache(tmp_path)
        path = copy.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            self.CORRUPTIONS["bit_rot_inside_valid_json"](original))
        with pytest.raises(CacheCorruptionError, match="integrity digest"):
            copy.load(key)
        assert copy.get(key) is None
        assert copy.quarantined == 1
        assert (copy.quarantine_dir / path.name).exists()

    def test_missing_entry_is_plain_miss_not_corruption(self, tmp_path):
        cache = ResultCache(tmp_path)
        with pytest.raises(FileNotFoundError):
            cache.load("0" * 64)
        assert cache.get("0" * 64) is None
        assert cache.misses == 1
        assert cache.quarantined == 0

    def test_load_round_trips_valid_entry(self, warm):
        root, cell, key, result = warm
        assert ResultCache(root).load(key) == result


class TestCacheKey:
    BASE = CellSpec(design="TLC", benchmark="perl", n_refs=N_REFS, seed=7)

    def test_key_is_stable(self):
        assert cache_key(self.BASE) == cache_key(
            CellSpec(design="TLC", benchmark="perl", n_refs=N_REFS, seed=7))

    def test_default_processor_config_is_canonical(self):
        explicit = dataclasses.replace(self.BASE,
                                       processor_config=ProcessorConfig())
        assert cache_key(explicit) == cache_key(self.BASE)

    @pytest.mark.parametrize("change", [
        {"design": "SNUCA2"},
        {"benchmark": "bzip"},
        {"n_refs": N_REFS + 1},
        {"seed": 8},
        {"warmup_fraction": 0.4},
        {"processor_config": ProcessorConfig(issue_width=2)},
        {"processor_config": ProcessorConfig(rob_entries=64)},
        {"processor_config": ProcessorConfig(mshrs=4)},
        {"processor_config": ProcessorConfig(l1_latency=2)},
        {"tech": Technology(name="45nm-5GHz", frequency_hz=5e9)},
        {"trace_spec": TraceSpec(mean_gap=10.0)},
        {"memory_latency_cycles": 150},
    ])
    def test_any_field_change_changes_key(self, change):
        assert cache_key(dataclasses.replace(self.BASE, **change)) \
            != cache_key(self.BASE)

    def test_key_includes_code_version(self, monkeypatch):
        import repro.analysis.runner as runner_module

        before = cache_key(self.BASE)
        monkeypatch.setattr(runner_module, "code_version_stamp",
                            lambda: "0" * 64)
        assert cache_key(self.BASE) != before

    def test_code_version_stamp_is_hex_digest(self):
        stamp = code_version_stamp()
        assert len(stamp) == 64
        int(stamp, 16)


class TestRunCell:
    def test_custom_trace_spec(self):
        spec = TraceSpec(mean_gap=12.0, hot_blocks=50_000,
                         dependent_fraction=0.5)
        result = run_cell(CellSpec(design="TLC", benchmark="custom",
                                   n_refs=N_REFS, seed=3, trace_spec=spec))
        assert result.benchmark == "custom"
        assert result.l2_requests > 0

    def test_memory_latency_override_slows_execution(self):
        fast = run_cell(CellSpec(design="SNUCA2", benchmark="gcc",
                                 n_refs=N_REFS, seed=7,
                                 memory_latency_cycles=100))
        slow = run_cell(CellSpec(design="SNUCA2", benchmark="gcc",
                                 n_refs=N_REFS, seed=7,
                                 memory_latency_cycles=900))
        assert slow.cycles > fast.cycles


class TestVariantCells:
    """Design-variant cells: the plumbing repro.explore rides on."""

    def _variant(self, cycles=2):
        from repro.core.config import DesignVariant

        return DesignVariant(name="snuca2-fast", base="SNUCA2",
                             overrides={"bank_access_cycles": cycles})

    def test_variant_grid_is_keyed_by_variant_name(self):
        grid = run_grid(["SNUCA2", self._variant()], benchmarks=("gcc",),
                        n_refs=N_REFS)
        assert grid.designs == ("SNUCA2", "snuca2-fast")
        result = grid.result("snuca2-fast", "gcc")
        assert result.design == "snuca2-fast"
        # The override took: two fewer bank cycles beat the base design.
        assert result.cycles < grid.result("SNUCA2", "gcc").cycles

    def test_variant_and_base_have_distinct_cache_keys(self):
        from repro.analysis.runner import grid_cell_specs

        cells, _ = grid_cell_specs(designs=["SNUCA2", self._variant()],
                                   benchmarks=("gcc",), n_refs=N_REFS)
        assert cells[0].design_base is None
        assert cells[1].design_base == "SNUCA2"
        assert cells[1].design_overrides == (("bank_access_cycles", 2),)
        assert cache_key(cells[0]) != cache_key(cells[1])

    def test_variant_cells_round_trip_through_cache_and_pool(self, tmp_path):
        designs = ["SNUCA2", self._variant()]
        cold = run_grid(designs, benchmarks=("gcc",), n_refs=N_REFS,
                        workers=2, cache=tmp_path)
        warm_cache = ResultCache(tmp_path)
        warm = run_grid(designs, benchmarks=("gcc",), n_refs=N_REFS,
                        cache=warm_cache)
        assert grid_payload(warm) == grid_payload(cold)
        assert warm_cache.hits == 2 and warm_cache.stores == 0

"""Fault-injection tests for the resilient grid executor.

Every test drives :mod:`repro.analysis.resilience` through a
deterministic :class:`FaultPlan` — the same hook ``REPRO_FAULT_PLAN``
exposes to CI smoke runs — and asserts both the recovery behavior
(results byte-identical to a clean run) and the telemetry trail
(retries / timeouts / worker deaths visible to the observability
layer).
"""

import dataclasses
import json

import pytest

from repro.analysis.resilience import (
    CellFailure,
    CheckpointJournal,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    RunnerTelemetry,
)
from repro.analysis.runner import (
    CellSpec,
    ResultCache,
    cache_key,
    execute_cells_detailed,
    run_cell,
    run_grid,
)
from repro.analysis.storage import result_to_dict
from repro.obs import MetricsRegistry

N_REFS = 800

#: No backoff in tests — retries should be instant.
FAST = dict(backoff_base_s=0.0)


def make_cells(*pairs):
    return [CellSpec(design=design, benchmark=benchmark, n_refs=N_REFS, seed=7)
            for design, benchmark in pairs]


@pytest.fixture(scope="module")
def cells():
    return make_cells(("SNUCA2", "perl"), ("TLC", "perl"))


@pytest.fixture(scope="module")
def baseline(cells):
    """Clean serial results every faulted run must reproduce exactly."""
    return [run_cell(cell) for cell in cells]


def results_of(outcomes):
    return [outcome.result for outcome in outcomes]


class TestRetry:
    def test_retry_then_succeed(self, cells, baseline):
        plan = FaultPlan([FaultSpec(design="TLC", benchmark="perl",
                                    action="raise", attempts=(1,))])
        telemetry = RunnerTelemetry()
        outcomes = execute_cells_detailed(
            cells, workers=2, policy=RetryPolicy(max_retries=2, **FAST),
            fault_plan=plan, telemetry=telemetry)
        assert results_of(outcomes) == baseline
        assert telemetry["cell_errors"] == 1
        assert telemetry["retries"] == 1
        assert telemetry["faults_injected"] == 1
        faulted = outcomes[cells.index(make_cells(("TLC", "perl"))[0])]
        assert faulted.attempts == 2

    def test_exhausted_retries_raise_cell_failure(self, cells):
        plan = FaultPlan([FaultSpec(design="TLC", benchmark="perl",
                                    action="raise", attempts=(1, 2))])
        with pytest.raises(CellFailure, match=r"\(TLC, perl\).*2 attempt"):
            execute_cells_detailed(
                cells, workers=1, policy=RetryPolicy(max_retries=1, **FAST),
                fault_plan=plan)

    def test_backoff_schedule(self):
        policy = RetryPolicy(max_retries=5, backoff_base_s=1.0,
                             backoff_factor=2.0, backoff_max_s=3.0)
        assert [policy.backoff_s(n) for n in (1, 2, 3, 4)] == [1.0, 2.0, 3.0, 3.0]
        assert RetryPolicy(max_retries=1).backoff_s(1) == 0.0


class TestTimeout:
    def test_timeout_then_reschedule(self, cells, baseline):
        plan = FaultPlan([FaultSpec(design="TLC", benchmark="perl",
                                    action="hang", attempts=(1,), hang_s=60)])
        telemetry = RunnerTelemetry()
        outcomes = execute_cells_detailed(
            cells, workers=2,
            policy=RetryPolicy(max_retries=1, cell_timeout_s=2.0, **FAST),
            fault_plan=plan, telemetry=telemetry)
        assert results_of(outcomes) == baseline
        assert telemetry["timeouts"] == 1
        assert telemetry["retries"] == 1

    def test_timeout_exhaustion_is_fatal(self, cells):
        plan = FaultPlan([FaultSpec(design="TLC", benchmark="perl",
                                    action="hang", attempts=(1,), hang_s=60)])
        with pytest.raises(CellFailure, match="timeouts"):
            execute_cells_detailed(
                cells, workers=2,
                policy=RetryPolicy(max_retries=0, cell_timeout_s=1.0, **FAST),
                fault_plan=plan)


class TestWorkerDeath:
    def test_dead_workers_cells_are_rescheduled(self, cells, baseline):
        plan = FaultPlan([FaultSpec(design="SNUCA2", benchmark="perl",
                                    action="die", attempts=(1,))])
        telemetry = RunnerTelemetry()
        outcomes = execute_cells_detailed(
            cells, workers=2, policy=RetryPolicy(max_retries=1, **FAST),
            fault_plan=plan, telemetry=telemetry)
        assert results_of(outcomes) == baseline
        assert telemetry["worker_deaths"] == 1
        assert telemetry["retries"] == 1


class TestCheckpointResume:
    def grid_payload(self, grid):
        return json.dumps(
            {f"{d}/{b}": result_to_dict(r)
             for (d, b), r in sorted(grid.results.items())},
            sort_keys=True)

    def test_interrupted_grid_resumes_byte_identical(self, tmp_path):
        designs, benchmarks = ("SNUCA2", "TLC"), ("perl",)
        clean = run_grid(designs=designs, benchmarks=benchmarks,
                         n_refs=N_REFS, workers=1)
        journal_path = tmp_path / "ckpt.jsonl"
        # First run: the TLC cell dies on every allowed attempt, so the
        # run aborts after journaling the completed SNUCA2 cell.
        plan = FaultPlan([FaultSpec(design="TLC", benchmark="perl",
                                    action="die", attempts=(1, 2))])
        with pytest.raises(CellFailure):
            run_grid(designs=designs, benchmarks=benchmarks, n_refs=N_REFS,
                     workers=1, policy=RetryPolicy(max_retries=1, **FAST),
                     checkpoint=CheckpointJournal(journal_path),
                     fault_plan=plan)
        assert journal_path.exists()
        # Resume without the fault: only the missing cell is computed.
        telemetry = RunnerTelemetry()
        resumed = run_grid(designs=designs, benchmarks=benchmarks,
                           n_refs=N_REFS, workers=1,
                           checkpoint=CheckpointJournal(journal_path),
                           telemetry=telemetry)
        assert telemetry["checkpoint_replays"] == 1
        assert telemetry["computed"] == 1
        assert self.grid_payload(resumed) == self.grid_payload(clean)
        meta = resumed.cell_meta[("SNUCA2", "perl")]
        assert meta["from_checkpoint"] is True

    def test_truncated_journal_tail_is_skipped(self, tmp_path, cells,
                                               baseline):
        journal_path = tmp_path / "ckpt.jsonl"
        journal = CheckpointJournal(journal_path)
        execute_cells_detailed(cells, workers=1, checkpoint=journal)
        # Simulate a run killed mid-write: chop the last line in half.
        text = journal_path.read_text()
        journal_path.write_text(text[: len(text) - len(text.splitlines()[-1]) // 2 - 1])
        reloaded = CheckpointJournal(journal_path)
        entries = reloaded.load()
        assert len(entries) == 1
        assert reloaded.skipped_lines == 1
        telemetry = RunnerTelemetry()
        outcomes = execute_cells_detailed(cells, workers=1,
                                          checkpoint=reloaded,
                                          telemetry=telemetry)
        assert results_of(outcomes) == baseline
        assert telemetry["checkpoint_replays"] == 1
        assert telemetry["computed"] == 1

    def test_cache_hits_are_journaled_for_later_resumes(self, tmp_path,
                                                        cells, baseline):
        cache = ResultCache(tmp_path / "cache")
        execute_cells_detailed(cells, workers=1, cache=cache)
        journal = CheckpointJournal(tmp_path / "ckpt.jsonl")
        execute_cells_detailed(cells, workers=1, cache=cache,
                               checkpoint=journal)
        # A third run can now resume from the journal alone.
        telemetry = RunnerTelemetry()
        outcomes = execute_cells_detailed(
            cells, workers=1, checkpoint=CheckpointJournal(journal.path),
            telemetry=telemetry)
        assert results_of(outcomes) == baseline
        assert telemetry["checkpoint_replays"] == len(cells)
        assert telemetry["computed"] == 0


class TestFaultPlanFormat:
    PAYLOAD = {"faults": [{"design": "TLC", "benchmark": "perl",
                           "action": "die", "attempts": [2]}]}

    def test_round_trip(self):
        plan = FaultPlan.from_dict(self.PAYLOAD)
        assert len(plan) == 1
        cell = make_cells(("TLC", "perl"))[0]
        assert plan.fault_for(cell, 1) is None
        assert plan.fault_for(cell, 2).action == "die"
        assert plan.fault_for(make_cells(("SNUCA2", "perl"))[0], 2) is None
        assert FaultPlan.from_dict(plan.to_dict()).faults == plan.faults

    def test_from_env_inline_json(self):
        env = {"REPRO_FAULT_PLAN": json.dumps(self.PAYLOAD)}
        assert len(FaultPlan.from_env(env)) == 1

    def test_from_env_file_path(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(self.PAYLOAD))
        assert len(FaultPlan.from_env({"REPRO_FAULT_PLAN": str(path)})) == 1

    def test_from_env_unset(self):
        assert FaultPlan.from_env({}) is None

    def test_env_plan_routes_runner_through_resilient_path(
            self, monkeypatch, cells, baseline, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(
            {"faults": [{"design": "TLC", "benchmark": "perl",
                         "action": "raise", "attempts": [3]}]}))
        monkeypatch.setenv("REPRO_FAULT_PLAN", str(path))
        # No explicit policy/telemetry: the env alone must activate the
        # resilient executor (attempt 3 never happens, so this passes).
        outcomes = execute_cells_detailed(cells, workers=1)
        assert results_of(outcomes) == baseline

    def test_bad_action_rejected(self):
        with pytest.raises(ValueError, match="unknown fault action"):
            FaultSpec(design="TLC", benchmark="perl", action="explode")

    def test_bad_payload_rejected(self):
        with pytest.raises(ValueError, match="'faults' list"):
            FaultPlan.from_dict({"cells": []})
        with pytest.raises(ValueError, match="bad fault entry"):
            FaultPlan.from_dict({"faults": [{"design": "TLC"}]})


class TestTelemetryObservability:
    def test_counters_mount_on_metrics_registry(self, cells):
        telemetry = RunnerTelemetry()
        registry = MetricsRegistry()
        telemetry.register(registry)
        plan = FaultPlan([FaultSpec(design="TLC", benchmark="perl",
                                    action="raise", attempts=(1,))])
        execute_cells_detailed(cells, workers=1,
                               policy=RetryPolicy(max_retries=1, **FAST),
                               fault_plan=plan, telemetry=telemetry)
        snapshot = registry.snapshot()
        assert snapshot["runner.retries"] == 1
        assert snapshot["runner.cells"] == len(cells)
        assert snapshot["runner.attempts"] == len(cells) + 1

    def test_as_dict_has_stable_zeroed_keys(self):
        assert RunnerTelemetry().as_dict() == {
            "cells": 0, "cache_hits": 0, "checkpoint_replays": 0,
            "computed": 0, "attempts": 0, "retries": 0, "timeouts": 0,
            "worker_deaths": 0, "cell_errors": 0, "faults_injected": 0,
            "quarantined": 0, "sanitized_retries": 0,
        }

    def test_unknown_count_rejected(self):
        with pytest.raises(ValueError, match="unknown telemetry count"):
            RunnerTelemetry().add("explosions")

    def test_quarantine_reaches_manifest_resilience_field(self, tmp_path,
                                                          cells):
        from repro.obs import build_manifest, load_manifest, save_manifest

        cache = ResultCache(tmp_path / "cache")
        execute_cells_detailed(cells, workers=1, cache=cache)
        corrupt = cache.path_for(cache_key(cells[0]))
        corrupt.write_text("{ definitely not json")
        telemetry = RunnerTelemetry()
        execute_cells_detailed(cells, workers=1,
                               cache=ResultCache(tmp_path / "cache"),
                               telemetry=telemetry)
        assert telemetry["quarantined"] == 1
        manifest = build_manifest(kind="report", config={}, metrics={},
                                  wall_time_s=0.0,
                                  resilience=telemetry.as_dict())
        path = tmp_path / "manifest.json"
        save_manifest(path, manifest)
        assert load_manifest(path).resilience["quarantined"] == 1


class TestDeterministicReplay:
    def test_faulted_run_matches_clean_run_cell_for_cell(self, tmp_path):
        """The acceptance-criteria shape: kill a worker mid-grid, retry,
        checkpoint — the saved grid is byte-identical to a clean one."""
        from repro.analysis.storage import save_grid

        designs, benchmarks = ("SNUCA2", "TLC"), ("perl", "bzip")
        plan = FaultPlan([FaultSpec(design="TLC", benchmark="bzip",
                                    action="die", attempts=(1,))])
        faulted = run_grid(designs=designs, benchmarks=benchmarks,
                           n_refs=N_REFS, workers=2,
                           policy=RetryPolicy(max_retries=2, **FAST),
                           checkpoint=CheckpointJournal(tmp_path / "ck.jsonl"),
                           fault_plan=plan)
        clean = run_grid(designs=designs, benchmarks=benchmarks,
                         n_refs=N_REFS, workers=1)
        faulted_path = tmp_path / "faulted.json"
        clean_path = tmp_path / "clean.json"
        save_grid(str(faulted_path), faulted)
        save_grid(str(clean_path), clean)
        assert faulted_path.read_bytes() == clean_path.read_bytes()

        # Resume purely from the journal (every cell replays, nothing
        # recomputes) — the round trip through JSONL must not perturb
        # serialization either (e.g. by reordering stats keys).
        resumed = run_grid(designs=designs, benchmarks=benchmarks,
                           n_refs=N_REFS, workers=2,
                           policy=RetryPolicy(max_retries=2, **FAST),
                           checkpoint=CheckpointJournal(tmp_path / "ck.jsonl"))
        resumed_path = tmp_path / "resumed.json"
        save_grid(str(resumed_path), resumed)
        assert resumed_path.read_bytes() == clean_path.read_bytes()


class TestCellSpecReplace:
    def test_outcome_fields_default_for_fast_path(self, cells):
        outcome = execute_cells_detailed(cells[:1], workers=1)[0]
        assert outcome.attempts == 1
        assert outcome.from_checkpoint is False
        assert dataclasses.fields(type(outcome))  # stays a dataclass

"""Simulator-core sanitizer: invariants, faults, bundles, and replay.

Three layers of coverage:

* **transparency** — a clean sanitized run returns a byte-identical
  result for every design (the sanitizer observes, never participates);
* **detection** — each seeded fault kind (dropped transfer, double
  bank install, stalled retirement) is caught with the right violation
  kind and component;
* **reproduction** — a violation captured to a crash bundle replays to
  the same violation, and ``minimize`` bisects it to a smaller prefix
  that still reproduces.
"""

import dataclasses
import json
import os
import types

import pytest

from repro.sanitizer import (
    Sanitizer,
    SanitizerConfig,
    SanitizerViolation,
    SimFault,
    load_bundle,
    minimize_bundle,
    replay_bundle,
)
from repro.sim.processor import ProcessorConfig
from repro.sim.system import run_system

ALL_DESIGNS = ("TLC", "TLCopt500", "SNUCA2", "DNUCA")


def run_pair(design, benchmark="mcf", n_refs=2000, **kwargs):
    plain = run_system(design, benchmark, n_refs=n_refs, seed=7)
    sanitized = run_system(design, benchmark, n_refs=n_refs, seed=7,
                           sanitize=True, **kwargs)
    return plain, sanitized


class TestTransparency:
    """A clean sanitized run is indistinguishable from a plain one."""

    @pytest.mark.parametrize("design", ALL_DESIGNS)
    def test_sanitized_result_identical(self, design):
        plain, sanitized = run_pair(design)
        assert sanitized == plain

    def test_sanitized_run_with_misses_identical(self):
        # swim streams through the cache (~1200 misses at this size),
        # exercising the insert/eviction paths under the bank sweep.
        plain, sanitized = run_pair("TLC", benchmark="swim")
        assert sanitized == plain
        assert plain.l2_misses > 0

    def test_manifest_records_sanitizer_provenance(self):
        from repro.obs import RunObserver

        observer = RunObserver()
        run_system("TLC", "mcf", n_refs=1500, seed=7, sanitize=True,
                   observer=observer)
        digest = observer.manifest.sanitizer
        assert digest["enabled"] is True
        assert digest["checks_run"] >= 1
        assert digest["fault"] is None

        plain_observer = RunObserver()
        run_system("TLC", "mcf", n_refs=1500, seed=7,
                   observer=plain_observer)
        assert plain_observer.manifest.sanitizer is None


class TestFaultDetection:
    """Each seeded fault kind trips its own invariant."""

    def test_dropped_mesh_transfer_breaks_conservation(self):
        with pytest.raises(SanitizerViolation) as exc:
            run_system("SNUCA2", "mcf", n_refs=2000, seed=7,
                       sanitizer=Sanitizer(fault=SimFault("drop_transfer",
                                                          at=40)))
        violation = exc.value
        assert violation.kind == "mesh.conservation"
        assert violation.details["lost"] == 1
        assert violation.details["sent"] == violation.details["delivered"] + 1

    def test_dropped_link_transfer_breaks_conservation(self):
        with pytest.raises(SanitizerViolation) as exc:
            run_system("TLC", "mcf", n_refs=2000, seed=7,
                       sanitizer=Sanitizer(fault=SimFault("drop_transfer",
                                                          at=40,
                                                          channel="link")))
        assert exc.value.kind == "link.conservation"

    def test_double_install_caught_as_duplicate_tag(self):
        # swim misses constantly, so the insert path (where the fault
        # lives) is actually exercised.
        with pytest.raises(SanitizerViolation) as exc:
            run_system("TLC", "swim", n_refs=2000, seed=7,
                       sanitizer=Sanitizer(fault=SimFault("double_install",
                                                          at=3)))
        violation = exc.value
        assert violation.kind == "bank.duplicate_tag"
        assert violation.component.startswith("TLC.")

    def test_stalled_retirement_trips_watchdog(self):
        config = SanitizerConfig(watchdog_stall_cycles=2000)
        with pytest.raises(SanitizerViolation) as exc:
            run_system("TLC", "mcf", n_refs=4000, seed=7,
                       sanitizer=Sanitizer(config=config,
                                           fault=SimFault("stall_retirement",
                                                          at=100)))
        violation = exc.value
        assert violation.kind == "watchdog.no_retirement"
        assert violation.details["stalled_cycles"] > 2000

    def test_violation_as_dict_is_json_ready(self):
        violation = SanitizerViolation("bank.occupancy", "TLC.bank03", 42,
                                       {"set": 1, "occupied": 3, "ways": 2})
        payload = json.loads(json.dumps(violation.as_dict()))
        assert payload["kind"] == "bank.occupancy"
        assert payload["component"] == "TLC.bank03"
        assert payload["cycle"] == 42


class TestUnitChecks:
    """Direct hook-level checks that need no full-system run."""

    def make_sanitizer(self, **config):
        sanitizer = Sanitizer(config=SanitizerConfig(**config))
        processor = types.SimpleNamespace(config=ProcessorConfig())
        sanitizer.attach_processor(processor)
        return sanitizer

    def test_mshr_leak_detected(self):
        sanitizer = self.make_sanitizer()
        with pytest.raises(SanitizerViolation) as exc:
            sanitizer.on_retire(10, 5, outstanding=9)  # mshrs default 8
        assert exc.value.kind == "mshr.leak"

    def test_mshr_leak_detected_at_quiesce(self):
        sanitizer = self.make_sanitizer()
        with pytest.raises(SanitizerViolation) as exc:
            sanitizer.on_quiesce(10, outstanding=9)
        assert exc.value.kind == "mshr.leak"
        assert exc.value.details["at_quiesce"] is True

    def test_engine_livelock_detected(self):
        from repro.sim.engine import Engine

        engine = Engine()
        sanitizer = Sanitizer(config=SanitizerConfig(
            max_same_cycle_events=50))
        sanitizer.attach_engine(engine)

        def spin():
            engine.schedule(0, spin)

        engine.schedule(0, spin)
        with pytest.raises(SanitizerViolation) as exc:
            engine.run()
        assert exc.value.kind == "engine.livelock"

    def test_engine_time_regression_detected(self):
        sanitizer = Sanitizer()
        sanitizer.on_engine_dispatch(100, 100, pending=1)
        with pytest.raises(SanitizerViolation) as exc:
            sanitizer.on_engine_dispatch(100, 99, pending=1)
        assert exc.value.kind == "engine.time_regression"

    def test_watched_engine_results_match_plain(self):
        from repro.sim.engine import Engine

        def run(engine):
            order = []
            engine.schedule(5, lambda: order.append("b"))
            engine.schedule(1, lambda: order.append("a"))
            engine.run()
            return order, engine.now

        plain = run(Engine())
        watched_engine = Engine()
        Sanitizer().attach_engine(watched_engine)
        assert run(watched_engine) == plain

    def test_sim_fault_parse(self):
        assert SimFault.parse("drop_transfer") == SimFault("drop_transfer")
        assert SimFault.parse("drop_transfer:40") == SimFault(
            "drop_transfer", at=40)
        assert SimFault.parse("drop_transfer:40:mesh") == SimFault(
            "drop_transfer", at=40, channel="mesh")
        for bad in ("explode", "drop_transfer:0", "drop_transfer:x"):
            with pytest.raises(ValueError):
                SimFault.parse(bad)

    def test_fault_round_trips_through_dict(self):
        fault = SimFault("double_install", at=3)
        assert SimFault.from_dict(fault.to_dict()) == fault
        config = SanitizerConfig(check_every=64)
        assert SanitizerConfig.from_dict(config.to_dict()) == config


class TestCrashBundles:
    """Violation -> bundle -> replay -> same violation."""

    def capture(self, tmp_path, **kwargs):
        with pytest.raises(SanitizerViolation) as exc:
            run_system(crash_dir=str(tmp_path / "crashes"), **kwargs)
        bundle_path = getattr(exc.value, "crash_bundle", None)
        assert bundle_path is not None
        return exc.value, load_bundle(bundle_path)

    def test_bundle_contents(self, tmp_path):
        violation, bundle = self.capture(
            tmp_path, design_name="SNUCA2", benchmark="mcf", n_refs=2000,
            seed=7, sanitizer=Sanitizer(fault=SimFault("drop_transfer",
                                                       at=40)))
        assert bundle.design == "SNUCA2"
        assert bundle.benchmark == "mcf"
        assert bundle.seed == 7
        assert bundle.error["type"] == "SanitizerViolation"
        assert bundle.error["kind"] == "mesh.conservation"
        assert bundle.sanitizer["fault"] == {"kind": "drop_transfer",
                                             "at": 40, "channel": None}
        # The trace prefix covers the failure point but not the whole run.
        assert 0 < len(bundle.trace) < 2000
        assert os.path.exists(os.path.join(bundle.path, "bundle.json"))
        assert os.path.exists(os.path.join(bundle.path, "trace.txt"))

    def test_bundle_dir_names_are_deterministic(self, tmp_path):
        for index in range(2):
            with pytest.raises(SanitizerViolation) as exc:
                run_system("SNUCA2", "mcf", n_refs=2000, seed=7,
                           crash_dir=str(tmp_path),
                           sanitizer=Sanitizer(
                               fault=SimFault("drop_transfer", at=40)))
            assert os.path.basename(exc.value.crash_bundle) \
                == f"SNUCA2-mcf-s7-{index:03d}"

    def test_replay_reproduces_each_fault_kind(self, tmp_path):
        cases = [
            dict(design_name="SNUCA2", benchmark="mcf", n_refs=2000, seed=7,
                 sanitizer=Sanitizer(fault=SimFault("drop_transfer", at=40))),
            dict(design_name="TLC", benchmark="swim", n_refs=2000, seed=7,
                 sanitizer=Sanitizer(fault=SimFault("double_install", at=3))),
            dict(design_name="TLC", benchmark="mcf", n_refs=4000, seed=7,
                 sanitizer=Sanitizer(
                     config=SanitizerConfig(watchdog_stall_cycles=2000),
                     fault=SimFault("stall_retirement", at=100))),
        ]
        for case in cases:
            violation, bundle = self.capture(tmp_path, **case)
            outcome = replay_bundle(bundle)
            assert outcome.reproduced, (case, outcome.outcome)
            assert outcome.violation.kind == violation.kind
            assert outcome.violation.component == violation.component

    def test_minimize_shrinks_and_still_reproduces(self, tmp_path):
        _, bundle = self.capture(
            tmp_path, design_name="SNUCA2", benchmark="mcf", n_refs=2000,
            seed=7, sanitizer=Sanitizer(fault=SimFault("drop_transfer",
                                                       at=40)))
        minimal, min_path = minimize_bundle(
            bundle, out_dir=str(tmp_path / "min"))
        assert 0 < minimal < len(bundle.trace)
        min_bundle = load_bundle(min_path)
        assert len(min_bundle.trace) == minimal
        assert min_bundle.minimized_from == bundle.path
        assert replay_bundle(min_bundle).reproduced

    def test_crash_bundle_for_unhandled_exception(self, tmp_path):
        # Any exception escaping the simulation is bundled, sanitizer
        # or not — here an invalid design override.
        from repro.core.config import ConfigError

        with pytest.raises(ConfigError) as exc:
            run_system("TLC", "mcf", n_refs=1000, seed=7,
                       crash_dir=str(tmp_path), banks=31)
        bundle = load_bundle(exc.value.crash_bundle)
        assert bundle.error["type"] == "ConfigError"

    def test_no_bundle_without_crash_dir(self):
        with pytest.raises(SanitizerViolation) as exc:
            run_system("SNUCA2", "mcf", n_refs=2000, seed=7,
                       sanitizer=Sanitizer(fault=SimFault("drop_transfer",
                                                          at=40)))
        assert not hasattr(exc.value, "crash_bundle")


class TestRunnerIntegration:
    """CellSpec / grid plumbing for sanitized execution."""

    def test_sanitize_changes_cache_key(self):
        from repro.analysis.runner import CellSpec, cache_key

        cell = CellSpec(design="TLC", benchmark="mcf", n_refs=1000, seed=7)
        sanitized = dataclasses.replace(cell, sanitize=True)
        assert cache_key(cell) != cache_key(sanitized)

    def test_run_cell_sanitized_identical(self):
        from repro.analysis.runner import CellSpec, run_cell

        cell = CellSpec(design="TLC", benchmark="mcf", n_refs=1500, seed=7)
        assert run_cell(dataclasses.replace(cell, sanitize=True)) \
            == run_cell(cell)

    def test_retry_escalates_to_sanitized_rerun(self):
        from repro.analysis.resilience import _attempt_cell
        from repro.analysis.runner import CellSpec

        cell = CellSpec(design="TLC", benchmark="mcf", n_refs=1000, seed=7)
        assert _attempt_cell(cell, 1) is cell
        assert _attempt_cell(cell, 2).sanitize is True
        already = dataclasses.replace(cell, sanitize=True)
        assert _attempt_cell(already, 2) is already

    def test_retry_escalation_counts_telemetry(self):
        from repro.analysis.resilience import (
            FaultPlan,
            FaultSpec,
            RetryPolicy,
            RunnerTelemetry,
        )
        from repro.analysis.runner import CellSpec, execute_cells_detailed

        cells = [CellSpec(design="TLC", benchmark="mcf", n_refs=1000, seed=7)]
        plan = FaultPlan(faults=(FaultSpec(design="TLC", benchmark="mcf",
                                           action="raise", attempts=(1,)),))
        telemetry = RunnerTelemetry()
        outcomes = execute_cells_detailed(
            cells, policy=RetryPolicy(max_retries=2, backoff_base_s=0.0),
            fault_plan=plan, telemetry=telemetry)
        assert outcomes[0].attempts == 2
        assert telemetry["sanitized_retries"] == 1
        # The outcome still describes the cell as specified (unsanitized):
        # the escalation is execution provenance, not a different cell.
        assert outcomes[0].cell.sanitize is False


class TestCLI:
    def test_sanitized_run_exits_zero(self, capsys):
        from repro.cli import main

        assert main(["run", "TLC", "mcf", "--refs", "1500",
                     "--sanitize"]) == 0
        assert "sanitizer: clean" in capsys.readouterr().out

    def test_injected_fault_exits_three_with_bundle(self, tmp_path, capsys):
        from repro.cli import main

        code = main(["run", "SNUCA2", "mcf", "--refs", "2000",
                     "--inject-fault", "drop_transfer:40",
                     "--crash-dir", str(tmp_path)])
        assert code == 3
        err = capsys.readouterr().err
        assert "mesh.conservation" in err
        assert "crash bundle written to" in err

    def test_replay_command_round_trip(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["run", "SNUCA2", "mcf", "--refs", "2000",
                     "--inject-fault", "drop_transfer:40",
                     "--crash-dir", str(tmp_path)]) == 3
        capsys.readouterr()
        bundles = sorted(os.listdir(tmp_path))
        assert bundles == ["SNUCA2-mcf-s7-000"]
        assert main(["replay", str(tmp_path / bundles[0])]) == 0
        assert "reproduced" in capsys.readouterr().out

    def test_replay_rejects_bad_bundle(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["replay", str(tmp_path / "nope")]) == 2
        assert "cannot load bundle" in capsys.readouterr().err

    def test_bad_fault_spec_exits_two(self, capsys):
        from repro.cli import main

        assert main(["run", "TLC", "mcf", "--refs", "100",
                     "--inject-fault", "explode"]) == 2


class TestGridEquivalenceSanitized:
    """The sanitized grid must byte-match the pre-sanitizer golden grid."""

    GOLDEN = os.path.join(os.path.dirname(__file__), "golden",
                          "grid_equivalence.json")

    def test_sanitized_grid_matches_golden_bytes(self, tmp_path):
        from repro.analysis.runner import run_grid
        from repro.analysis.storage import save_grid

        grid = run_grid(designs=("SNUCA2", "DNUCA", "TLC", "TLCopt500"),
                        benchmarks=("perl", "bzip", "mcf", "swim"),
                        n_refs=3000, seed=7, sanitize=True)
        out = tmp_path / "grid.json"
        save_grid(str(out), grid)
        with open(self.GOLDEN, "rb") as handle:
            golden_bytes = handle.read()
        assert out.read_bytes() == golden_bytes

"""Seed robustness: headline conclusions must not be seed lottery.

Runs use "custom" benchmark names where cold caches suffice, to skip
the (expensive) automatic pre-warm; mcf keeps its pre-warm because its
conclusion is about hits.
"""

import pytest

from repro.sim.system import run_system
from repro.workloads.profiles import get_profile
from repro.workloads.synthetic import generate_trace

SEEDS = (1, 2)


@pytest.mark.parametrize("seed", SEEDS)
def test_tlc_beats_snuca_on_mcf_for_every_seed(seed):
    spec = get_profile("mcf").spec
    trace = generate_trace(spec, 6_000, seed=seed)
    tlc = run_system("TLC", "custom-mcf", trace=trace, prewarm_spec=spec)
    snuca = run_system("SNUCA2", "custom-mcf", trace=trace, prewarm_spec=spec)
    assert tlc.cycles < snuca.cycles * 0.9


@pytest.mark.parametrize("seed", SEEDS)
def test_tlc_lookup_band_stable_across_seeds(seed):
    spec = get_profile("oltp").spec
    trace = generate_trace(spec, 6_000, seed=seed)
    result = run_system("TLC", "custom-oltp", trace=trace)
    assert 11.0 <= result.mean_lookup_latency <= 16.0


def test_miss_ratio_variance_small_across_seeds():
    spec = get_profile("swim").spec
    ratios = []
    for seed in SEEDS + (3,):
        trace = generate_trace(spec, 6_000, seed=seed)
        # Cold cache: streaming misses dominate either way.
        ratios.append(run_system("TLC", "custom-swim", trace=trace).miss_ratio)
    assert max(ratios) - min(ratios) < 0.05


def test_equake_anomaly_holds_across_seeds():
    """TLC(LRU) misses more than DNUCA on equake for every seed."""
    spec = get_profile("equake").spec
    for seed in SEEDS:
        trace = generate_trace(spec, 8_000, seed=seed)
        tlc = run_system("TLC", "custom-eq", trace=trace, prewarm_spec=spec)
        dnuca = run_system("DNUCA", "custom-eq", trace=trace,
                           prewarm_spec=spec)
        assert tlc.miss_ratio > dnuca.miss_ratio, seed

"""The simulation service: HTTP lifecycle, dedupe, validation, fuzzing.

Suites:

* ``TestJobSpecValidation`` — the schema-first validator's typed-error
  contract on hand-picked payloads.
* ``TestJobSpecFuzz`` — Hypothesis drives arbitrary JSON at
  :func:`~repro.service.schema.validate_job_spec` (schemathesis-style,
  per ROADMAP): it may accept or raise ``ConfigError``, never anything
  else, and whatever it accepts the :class:`JobStore` can key.
* ``TestServiceLifecycle`` — a real ``ThreadingHTTPServer`` on an
  ephemeral port: submit/poll/result, in-process dedupe with
  byte-identical results, restart dedupe through a shared result cache,
  concurrent clients, warm derived-artifact serving, error envelopes.
* ``TestClientBackoff`` — the client's capped-exponential poll schedule
  and 429/503 retry backoff, deterministically (injected sleep/RNG, no
  wall clock).
* ``TestStoreHardening`` — idempotent close, straggler accounting.
* ``TestHttpFuzz`` — Hypothesis drives method x path x body at a live
  server: every non-2xx answer is a well-formed JSON error envelope
  with a declared code, and the server stays serviceable afterwards.

Grids are tiny (two designs x one benchmark at a few thousand refs) so
the whole module stays inside the tier-1 time budget.

The chaos suite — kill -9 restart recovery, admission-control floods,
TTL eviction, graceful drain — lives in ``tests/test_service_chaos.py``.
"""

import http.client
import json
import threading

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.config import ConfigError
from repro.service import (
    ENDPOINTS,
    ERROR_CODES,
    JOB_SPEC_SCHEMA,
    JobStore,
    ServiceClient,
    ServiceError,
    backoff_delay,
    job_key,
    make_server,
    poll_schedule,
    validate_job_spec,
)

SMALL_SPEC = {"designs": ["SNUCA2", "TLC"], "benchmarks": ["gcc"],
              "n_refs": 1_500}


@pytest.fixture()
def service(tmp_path):
    """A live server over fresh cache lanes; yields (client, store)."""
    store = JobStore(cache=tmp_path / "results",
                     derived=tmp_path / "derived", workers=2)
    server = make_server(store)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = ServiceClient(f"http://127.0.0.1:{server.server_address[1]}")
    try:
        yield client, store
    finally:
        server.shutdown()
        server.server_close()
        store.close()


class TestJobSpecValidation:
    def test_minimal_spec_fills_defaults(self):
        spec = validate_job_spec({"designs": ["TLC"]})
        assert spec.designs == ("TLC",)
        assert len(spec.benchmarks) == 12
        assert spec.n_refs == JOB_SPEC_SCHEMA["properties"]["n_refs"]["default"]
        assert spec.seed == 7
        assert spec.sanitize is False

    def test_design_names_resolve_registry_spellings(self):
        spec = validate_job_spec({"designs": ["tlc", "s-nuca2"]})
        assert spec.designs == ("TLC", "SNUCA2")

    def test_unknown_design_is_config_error(self):
        with pytest.raises(ConfigError, match="job spec"):
            validate_job_spec({"designs": ["NOPE"]})

    def test_duplicate_designs_rejected_after_resolution(self):
        with pytest.raises(ConfigError, match="duplicate"):
            validate_job_spec({"designs": ["TLC", "tlc"]})

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigError, match="unknown field"):
            validate_job_spec({"designs": ["TLC"], "refs": 100})

    def test_bool_is_not_an_integer(self):
        with pytest.raises(ConfigError, match="n_refs"):
            validate_job_spec({"designs": ["TLC"], "n_refs": True})

    def test_warmup_fraction_must_stay_below_one(self):
        with pytest.raises(ConfigError, match="warmup_fraction"):
            validate_job_spec({"designs": ["TLC"], "warmup_fraction": 1.0})

    def test_non_object_body_rejected(self):
        with pytest.raises(ConfigError, match="JSON object"):
            validate_job_spec(["designs"])

    def test_cell_cap_enforced(self):
        # 7 designs x 12 benchmarks = 84 cells is fine; n_refs cap isn't.
        with pytest.raises(ConfigError, match="n_refs"):
            validate_job_spec({"designs": ["TLC"], "n_refs": 10**9})

    def test_job_key_is_spelling_insensitive(self):
        a = validate_job_spec({"designs": ["tlc"], "benchmarks": ["gcc"]})
        b = validate_job_spec({"designs": ["TLC"], "benchmarks": ["gcc"]})
        assert job_key(a) == job_key(b)

    def test_job_key_separates_different_grids(self):
        a = validate_job_spec({"designs": ["TLC"], "benchmarks": ["gcc"]})
        b = validate_job_spec({"designs": ["TLC"], "benchmarks": ["mcf"]})
        assert job_key(a) != job_key(b)


# Payloads shaped like job specs (right field names, wrong-ish values)
# plus arbitrary JSON — the adversarial half of the fuzz.
_json_scalars = st.none() | st.booleans() | st.integers() | st.floats(
    allow_nan=False) | st.text(max_size=20)
_json_values = st.recursive(
    _json_scalars,
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=10), children, max_size=4),
    max_leaves=10)
_speclike = st.fixed_dictionaries(
    {},
    optional={
        "designs": st.lists(st.sampled_from(
            ["TLC", "tlc", "SNUCA2", "DNUCA", "NOPE", ""]), max_size=4)
        | _json_values,
        "benchmarks": st.lists(st.sampled_from(
            ["gcc", "mcf", "bogus"]), max_size=3) | _json_values,
        "n_refs": st.integers(-5, 10**7) | _json_values,
        "seed": st.integers(-2, 2**33) | _json_values,
        "warmup_fraction": st.floats(allow_nan=True, allow_infinity=True)
        | _json_values,
        "sanitize": st.booleans() | _json_values,
        "extra": _json_values,
    })


class TestJobSpecFuzz:
    @settings(max_examples=120, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(payload=_speclike | _json_values)
    def test_validator_accepts_or_raises_config_error_only(self, payload):
        try:
            spec = validate_job_spec(payload)
        except ConfigError:
            return
        # Whatever survives validation must be a well-formed, keyable
        # grid the store could run.
        assert spec.designs and spec.benchmarks
        assert 1 <= spec.n_refs
        assert 0.0 <= spec.warmup_fraction < 1.0
        assert len(job_key(spec)) == 64


class TestServiceLifecycle:
    def test_submit_poll_result_lifecycle(self, service):
        client, store = service
        submitted = client.submit(SMALL_SPEC)
        assert submitted["_http_status"] == 201
        assert submitted["deduplicated"] is False
        assert submitted["id"].startswith("job-")

        status = client.wait(submitted["id"], timeout_s=120)
        assert status["state"] == "done"
        assert status["cells"]["total"] == 2
        assert status["cells"]["simulated"] == 2
        assert status["cells"]["from_cache"] == 0
        assert {cell["state"] for cell in status["cell_status"]} == {"done"}
        assert status["manifest"]["kind"] == "service.job"

        result = client.result(submitted["id"])
        assert result["designs"] == ["SNUCA2", "TLC"]
        assert result["cells"]["TLC"]["gcc"]["l2_requests"] > 0
        assert result["normalized_time"]["dataset"][0][0] == "gcc"

    def test_duplicate_submission_returns_identical_bytes(self, service):
        client, store = service
        first = client.submit(SMALL_SPEC)
        client.wait(first["id"], timeout_s=120)
        bytes_one = client.result_bytes(first["id"])

        second = client.submit(SMALL_SPEC)
        assert second["_http_status"] == 200
        assert second["deduplicated"] is True
        assert second["id"] == first["id"]
        assert client.result_bytes(second["id"]) == bytes_one
        assert store.counter["jobs_deduplicated"] == 1
        assert store.counter["cells_simulated"] == 2

    def test_restart_dedupe_through_shared_result_cache(self, tmp_path):
        """A fresh store over a warm result cache simulates nothing."""
        payloads = []
        simulated = []
        for _ in range(2):
            store = JobStore(cache=tmp_path / "results",
                            derived=tmp_path / "derived", workers=2)
            server = make_server(store)
            threading.Thread(target=server.serve_forever,
                             daemon=True).start()
            client = ServiceClient(
                f"http://127.0.0.1:{server.server_address[1]}")
            job = client.submit(SMALL_SPEC)
            status = client.wait(job["id"], timeout_s=120)
            simulated.append(status["cells"]["simulated"])
            payloads.append(client.result_bytes(job["id"]))
            server.shutdown()
            server.server_close()
            store.close()
        assert simulated == [2, 0]
        assert payloads[0] == payloads[1]

    def test_concurrent_clients_share_one_store(self, service):
        client, store = service
        specs = [dict(SMALL_SPEC, benchmarks=[bench])
                 for bench in ("gcc", "mcf", "gcc", "mcf")]
        results = [None] * len(specs)
        errors = []

        def run(index):
            try:
                results[index] = ServiceClient(client.base_url).run(
                    specs[index], timeout_s=120)
            except Exception as error:  # noqa: BLE001 — surfaced below
                errors.append(error)

        threads = [threading.Thread(target=run, args=(i,))
                   for i in range(len(specs))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors
        assert results[0] == results[2]
        assert results[1] == results[3]
        assert results[0] != results[1]
        # The duplicate pair deduped to one job each.
        assert store.counter["jobs_submitted"] == 2
        assert store.counter["jobs_deduplicated"] == 2

    def test_result_before_completion_is_202_pending(self, service):
        client, store = service
        # Submit straight to the store but never start a server-side
        # worker race: ask for the result of a job that cannot be done
        # yet by submitting a larger grid and checking immediately.
        submitted = client.submit(dict(SMALL_SPEC,
                                       benchmarks=["gcc", "mcf", "swim"]))
        status, raw, _headers = client._request(
            "GET", f"/v1/jobs/{submitted['id']}/result")
        assert status in (200, 202)
        if status == 202:
            document = json.loads(raw)
            assert document["pending"] is True
            assert document["job"]["state"] in ("queued", "running")
        client.wait(submitted["id"], timeout_s=120)

    def test_invalid_spec_is_400_with_config_error_detail(self, service):
        client, _ = service
        with pytest.raises(ServiceError) as excinfo:
            client.submit({"designs": ["NOPE"]})
        assert excinfo.value.status == 400
        assert excinfo.value.code == "invalid_spec"
        # The detail is the typed ConfigError's own message.
        assert "job spec" in excinfo.value.detail
        with pytest.raises(ConfigError) as config_excinfo:
            validate_job_spec({"designs": ["NOPE"]})
        assert excinfo.value.detail == str(config_excinfo.value)

    def test_malformed_json_is_400_invalid_json(self, service):
        client, _ = service
        import urllib.request

        request = urllib.request.Request(
            f"{client.base_url}/v1/jobs", data=b"{not json",
            method="POST", headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400
        envelope = json.load(excinfo.value)["error"]
        assert envelope["code"] == "invalid_json"

    def test_unknown_job_and_bad_artifact_key(self, service):
        client, _ = service
        with pytest.raises(ServiceError) as excinfo:
            client.status("job-doesnotexist00")
        assert (excinfo.value.status, excinfo.value.code) == (
            404, "unknown_job")
        with pytest.raises(ServiceError) as excinfo:
            client.artifact("not-a-key")
        assert (excinfo.value.status, excinfo.value.code) == (
            400, "invalid_key")
        with pytest.raises(ServiceError) as excinfo:
            client.artifact("0" * 64)
        assert (excinfo.value.status, excinfo.value.code) == (
            404, "unknown_artifact")

    def test_warm_derived_artifact_served_by_key(self, service):
        client, store = service
        result = client.run(SMALL_SPEC, timeout_s=120)
        key = result["artifacts"]["grid.normalized"]
        served = client.artifact(key)
        assert served["lane"] == "derived"
        assert served["artifact"]["dataset"] == \
            result["normalized_time"]["dataset"]

    def test_result_cache_key_served_as_result_lane_artifact(self, service):
        client, store = service
        submitted = client.submit(SMALL_SPEC)
        status = client.wait(submitted["id"], timeout_s=120)
        # Every cell's provenance key resolves through the artifact
        # endpoint to the raw result document.
        manifest_metrics = status["manifest"]["metrics"]
        assert manifest_metrics["service.jobs_submitted"] >= 1
        result = client.result(submitted["id"])
        cell_key = store.get(submitted["id"]).cell_keys[0]
        served = client.artifact(cell_key)
        assert served["lane"] == "result"
        assert served["result"]["design"] == "SNUCA2"

    def test_healthz_exposes_all_metric_families(self, service):
        client, _ = service
        client.run(SMALL_SPEC, timeout_s=120)
        health = client.healthz()
        assert health["ok"] is True
        names = set(health["metrics"])
        assert any(name.startswith("service.") for name in names)
        assert any(name.startswith("runner.") for name in names)
        assert any(name.startswith("analysis.derived.") for name in names)
        assert health["jobs"]["done"] == 1

    def test_route_table_matches_handlers(self, service):
        """Every declared endpoint answers something other than 404."""
        client, _ = service
        submitted = client.submit(SMALL_SPEC)
        client.wait(submitted["id"], timeout_s=120)
        substitutions = {"{id}": submitted["id"], "{key}": "0" * 64}
        for method, path, _summary in ENDPOINTS:
            for template, value in substitutions.items():
                path = path.replace(template, value)
            status, raw, _headers = client._request(method, path,
                                                    body=SMALL_SPEC
                                                    if method == "POST"
                                                    else None)
            if status in (400, 404):
                envelope = json.loads(raw)["error"]
                assert envelope["code"] != "not_found", (method, path)
            assert status != 405, (method, path)

    def test_error_codes_documented(self):
        for code in ("invalid_json", "invalid_spec", "unknown_job",
                     "unknown_artifact", "invalid_key", "not_found",
                     "method_not_allowed", "job_failed", "bad_request",
                     "over_capacity", "draining", "gone", "internal",
                     "not_implemented"):
            assert code in ERROR_CODES

    def test_malformed_content_length_is_400_envelope(self, service):
        """Regression: a garbage Content-Length used to crash the
        handler thread (ValueError in int()) and drop the connection."""
        client, _ = service
        host, port = client.base_url.split("//")[1].split(":")
        connection = http.client.HTTPConnection(host, int(port), timeout=30)
        try:
            connection.putrequest("POST", "/v1/jobs")
            connection.putheader("Content-Type", "application/json")
            connection.putheader("Content-Length", "banana")
            connection.endheaders()
            response = connection.getresponse()
            assert response.status == 400
            envelope = json.loads(response.read())["error"]
            assert envelope["code"] == "bad_request"
            assert "banana" in envelope["detail"]
        finally:
            connection.close()
        # The server survived and still answers.
        assert client.healthz()["ok"] is True

    def test_unsupported_method_is_405_envelope(self, service):
        client, _ = service
        status, raw, _headers = client._request("DELETE", "/v1/jobs")
        assert status == 405
        assert json.loads(raw)["error"]["code"] == "method_not_allowed"


class TestClientBackoff:
    def test_backoff_delay_grows_then_caps(self):
        delays = [backoff_delay(a, base_s=0.25, factor=2.0, cap_s=10.0)
                  for a in range(8)]
        assert delays[:6] == [0.25, 0.5, 1.0, 2.0, 4.0, 8.0]
        assert delays[6:] == [10.0, 10.0]

    def test_poll_schedule_starts_fast_and_caps(self):
        schedule = poll_schedule(0.1, factor=1.5, cap_s=2.0)
        delays = [next(schedule) for _ in range(12)]
        assert delays[0] == pytest.approx(0.1)
        assert all(a <= b or b == 2.0
                   for a, b in zip(delays, delays[1:]))
        assert delays[-1] == 2.0

    def test_wait_sleeps_on_the_poll_schedule(self):
        """wait() is deterministic given an injected sleep: statuses
        stubbed to stay 'running' N times produce exactly the schedule's
        first N delays, with no wall-clock sleeping."""
        slept = []
        client = ServiceClient("http://invalid.test", sleep=slept.append)
        states = iter(["queued", "running", "running", "done"])
        client.status = lambda job_id: {"state": next(states), "cells": {}}
        document = client.wait("job-x", timeout_s=60, poll_s=0.1)
        assert document["state"] == "done"
        expected = poll_schedule(0.1)
        assert slept == [next(expected) for _ in range(3)]

    def test_submit_retries_429_honoring_retry_after(self):
        """A 429 with Retry-After=3 forces a >= 3s delay even though
        attempt-0 backoff alone would be 0.25s; jitter is pinned to 0."""
        slept = []

        class _Rng:
            def random(self):
                return 0.0

        client = ServiceClient("http://invalid.test", retries=2,
                               jitter_fraction=0.5, rng=_Rng(),
                               sleep=slept.append)
        calls = {"n": 0}

        def fake_json(method, path, body=None):
            calls["n"] += 1
            if calls["n"] <= 2:
                raise ServiceError(429, "over_capacity", "busy",
                                   retry_after_s=3.0)
            return 201, {"id": "job-x", "deduplicated": False}

        client._json = fake_json
        document = client.submit(SMALL_SPEC)
        assert document["_http_status"] == 201
        assert calls["n"] == 3
        # Both delays floor at the server's Retry-After, not the
        # (smaller) exponential backoff.
        assert slept == [3.0, 3.0]

    def test_submit_gives_up_after_retries(self):
        client = ServiceClient("http://invalid.test", retries=1,
                               jitter_fraction=0.0,
                               sleep=lambda _s: None)

        def always_busy(method, path, body=None):
            raise ServiceError(503, "draining", "bye", retry_after_s=0.01)

        client._json = always_busy
        with pytest.raises(ServiceError) as excinfo:
            client.submit(SMALL_SPEC)
        assert excinfo.value.status == 503

    def test_non_retryable_error_raises_immediately(self):
        client = ServiceClient("http://invalid.test", retries=5,
                               sleep=lambda _s: pytest.fail("slept"))

        def bad_spec(method, path, body=None):
            raise ServiceError(400, "invalid_spec", "nope")

        client._json = bad_spec
        with pytest.raises(ServiceError):
            client.submit(SMALL_SPEC)


class TestStoreHardening:
    def test_close_is_idempotent(self, tmp_path):
        store = JobStore(cache=tmp_path / "results", workers=2)
        store.start()
        assert store.close() == 0
        assert store.close() == 0  # second close: no-op, no error
        assert store.counter["close.stragglers"] == 0

    def test_close_counts_stragglers(self, tmp_path):
        """A worker that cannot join within the timeout is counted in
        service.close.stragglers, not silently abandoned."""
        store = JobStore(cache=tmp_path / "results", workers=1)
        release = threading.Event()
        blocked = threading.Event()

        def stuck():
            blocked.set()
            release.wait(30)

        store.start()
        store._queue.put(None)  # consume the real worker...
        store._threads[0].join(timeout=10)
        stuck_thread = threading.Thread(target=stuck, daemon=True)
        stuck_thread.start()
        store._threads[0] = stuck_thread  # ...and plant a stuck one
        blocked.wait(10)
        try:
            assert store.close(timeout_s=0.1) == 1
            assert store.counter["close.stragglers"] == 1
        finally:
            release.set()


# One live server shared by every fuzz example: booting a server per
# example would dominate the runtime, and surviving *all* examples on
# one process is exactly the serviceability property under test.
@pytest.fixture(scope="module")
def fuzz_server(tmp_path_factory):
    tmp_path = tmp_path_factory.mktemp("fuzz")
    store = JobStore(cache=tmp_path / "results", workers=1)
    server = make_server(store)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    try:
        yield f"127.0.0.1:{server.server_address[1]}"
    finally:
        server.shutdown()
        server.server_close()
        store.close()


_fuzz_paths = st.one_of(
    st.sampled_from([path for _m, path, _s in ENDPOINTS]),
    st.sampled_from(["/", "/v1", "/v1/jobs/", "/v2/jobs", "//v1/jobs",
                     "/v1/jobs/%00", "/v1/artifacts/", "/v1/healthz/x"]),
    st.text(st.characters(min_codepoint=33, max_codepoint=126),
            min_size=0, max_size=40).map(
        lambda t: "/" + t.replace(" ", "")),
)
_fuzz_bodies = st.one_of(
    st.none(),
    st.binary(max_size=200),
    st.dictionaries(st.text(max_size=8), st.integers(), max_size=4).map(
        lambda d: json.dumps(d).encode()),
)


class TestHttpFuzz:
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.function_scoped_fixture])
    @given(method=st.sampled_from(["GET", "POST", "PUT", "DELETE", "PATCH"]),
           path=_fuzz_paths, body=_fuzz_bodies)
    def test_every_response_is_an_envelope_or_2xx(self, fuzz_server,
                                                  method, path, body):
        """Total-envelope contract: whatever method x path x body we
        throw, the server answers JSON — an error envelope with a
        declared code for >= 400 — and never drops the connection."""
        host, port = fuzz_server.split(":")
        connection = http.client.HTTPConnection(host, int(port), timeout=30)
        try:
            headers = {"Connection": "close"}
            if body is not None:
                headers["Content-Type"] = "application/json"
            try:
                connection.request(method, path, body=body, headers=headers)
                response = connection.getresponse()
            except (http.client.HTTPException, OSError) as error:
                pytest.fail(f"{method} {path!r}: connection died: {error}")
            raw = response.read()
            if response.status >= 400:
                envelope = json.loads(raw)["error"]
                assert envelope["code"] in ERROR_CODES, (method, path)
                assert envelope["message"]
            else:
                assert response.status in (200, 201, 202)
                if raw:
                    json.loads(raw)
        finally:
            connection.close()

    def test_server_serviceable_after_fuzzing(self, fuzz_server):
        """Runs after the fuzz (alphabetical luck aside, its own check):
        the fuzzed server still answers healthz."""
        client = ServiceClient(f"http://{fuzz_server}")
        assert client.healthz()["ok"] is True

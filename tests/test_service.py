"""The simulation service: HTTP lifecycle, dedupe, validation, fuzzing.

Suites:

* ``TestJobSpecValidation`` — the schema-first validator's typed-error
  contract on hand-picked payloads.
* ``TestJobSpecFuzz`` — Hypothesis drives arbitrary JSON at
  :func:`~repro.service.schema.validate_job_spec` (schemathesis-style,
  per ROADMAP): it may accept or raise ``ConfigError``, never anything
  else, and whatever it accepts the :class:`JobStore` can key.
* ``TestServiceLifecycle`` — a real ``ThreadingHTTPServer`` on an
  ephemeral port: submit/poll/result, in-process dedupe with
  byte-identical results, restart dedupe through a shared result cache,
  concurrent clients, warm derived-artifact serving, error envelopes.

Grids are tiny (two designs x one benchmark at a few thousand refs) so
the whole module stays inside the tier-1 time budget.
"""

import json
import threading

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.config import ConfigError
from repro.service import (
    ENDPOINTS,
    ERROR_CODES,
    JOB_SPEC_SCHEMA,
    JobStore,
    ServiceClient,
    ServiceError,
    job_key,
    make_server,
    validate_job_spec,
)

SMALL_SPEC = {"designs": ["SNUCA2", "TLC"], "benchmarks": ["gcc"],
              "n_refs": 1_500}


@pytest.fixture()
def service(tmp_path):
    """A live server over fresh cache lanes; yields (client, store)."""
    store = JobStore(cache=tmp_path / "results",
                     derived=tmp_path / "derived", workers=2)
    server = make_server(store)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = ServiceClient(f"http://127.0.0.1:{server.server_address[1]}")
    try:
        yield client, store
    finally:
        server.shutdown()
        server.server_close()
        store.close()


class TestJobSpecValidation:
    def test_minimal_spec_fills_defaults(self):
        spec = validate_job_spec({"designs": ["TLC"]})
        assert spec.designs == ("TLC",)
        assert len(spec.benchmarks) == 12
        assert spec.n_refs == JOB_SPEC_SCHEMA["properties"]["n_refs"]["default"]
        assert spec.seed == 7
        assert spec.sanitize is False

    def test_design_names_resolve_registry_spellings(self):
        spec = validate_job_spec({"designs": ["tlc", "s-nuca2"]})
        assert spec.designs == ("TLC", "SNUCA2")

    def test_unknown_design_is_config_error(self):
        with pytest.raises(ConfigError, match="job spec"):
            validate_job_spec({"designs": ["NOPE"]})

    def test_duplicate_designs_rejected_after_resolution(self):
        with pytest.raises(ConfigError, match="duplicate"):
            validate_job_spec({"designs": ["TLC", "tlc"]})

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigError, match="unknown field"):
            validate_job_spec({"designs": ["TLC"], "refs": 100})

    def test_bool_is_not_an_integer(self):
        with pytest.raises(ConfigError, match="n_refs"):
            validate_job_spec({"designs": ["TLC"], "n_refs": True})

    def test_warmup_fraction_must_stay_below_one(self):
        with pytest.raises(ConfigError, match="warmup_fraction"):
            validate_job_spec({"designs": ["TLC"], "warmup_fraction": 1.0})

    def test_non_object_body_rejected(self):
        with pytest.raises(ConfigError, match="JSON object"):
            validate_job_spec(["designs"])

    def test_cell_cap_enforced(self):
        # 7 designs x 12 benchmarks = 84 cells is fine; n_refs cap isn't.
        with pytest.raises(ConfigError, match="n_refs"):
            validate_job_spec({"designs": ["TLC"], "n_refs": 10**9})

    def test_job_key_is_spelling_insensitive(self):
        a = validate_job_spec({"designs": ["tlc"], "benchmarks": ["gcc"]})
        b = validate_job_spec({"designs": ["TLC"], "benchmarks": ["gcc"]})
        assert job_key(a) == job_key(b)

    def test_job_key_separates_different_grids(self):
        a = validate_job_spec({"designs": ["TLC"], "benchmarks": ["gcc"]})
        b = validate_job_spec({"designs": ["TLC"], "benchmarks": ["mcf"]})
        assert job_key(a) != job_key(b)


# Payloads shaped like job specs (right field names, wrong-ish values)
# plus arbitrary JSON — the adversarial half of the fuzz.
_json_scalars = st.none() | st.booleans() | st.integers() | st.floats(
    allow_nan=False) | st.text(max_size=20)
_json_values = st.recursive(
    _json_scalars,
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=10), children, max_size=4),
    max_leaves=10)
_speclike = st.fixed_dictionaries(
    {},
    optional={
        "designs": st.lists(st.sampled_from(
            ["TLC", "tlc", "SNUCA2", "DNUCA", "NOPE", ""]), max_size=4)
        | _json_values,
        "benchmarks": st.lists(st.sampled_from(
            ["gcc", "mcf", "bogus"]), max_size=3) | _json_values,
        "n_refs": st.integers(-5, 10**7) | _json_values,
        "seed": st.integers(-2, 2**33) | _json_values,
        "warmup_fraction": st.floats(allow_nan=True, allow_infinity=True)
        | _json_values,
        "sanitize": st.booleans() | _json_values,
        "extra": _json_values,
    })


class TestJobSpecFuzz:
    @settings(max_examples=120, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(payload=_speclike | _json_values)
    def test_validator_accepts_or_raises_config_error_only(self, payload):
        try:
            spec = validate_job_spec(payload)
        except ConfigError:
            return
        # Whatever survives validation must be a well-formed, keyable
        # grid the store could run.
        assert spec.designs and spec.benchmarks
        assert 1 <= spec.n_refs
        assert 0.0 <= spec.warmup_fraction < 1.0
        assert len(job_key(spec)) == 64


class TestServiceLifecycle:
    def test_submit_poll_result_lifecycle(self, service):
        client, store = service
        submitted = client.submit(SMALL_SPEC)
        assert submitted["_http_status"] == 201
        assert submitted["deduplicated"] is False
        assert submitted["id"].startswith("job-")

        status = client.wait(submitted["id"], timeout_s=120)
        assert status["state"] == "done"
        assert status["cells"]["total"] == 2
        assert status["cells"]["simulated"] == 2
        assert status["cells"]["from_cache"] == 0
        assert {cell["state"] for cell in status["cell_status"]} == {"done"}
        assert status["manifest"]["kind"] == "service.job"

        result = client.result(submitted["id"])
        assert result["designs"] == ["SNUCA2", "TLC"]
        assert result["cells"]["TLC"]["gcc"]["l2_requests"] > 0
        assert result["normalized_time"]["dataset"][0][0] == "gcc"

    def test_duplicate_submission_returns_identical_bytes(self, service):
        client, store = service
        first = client.submit(SMALL_SPEC)
        client.wait(first["id"], timeout_s=120)
        bytes_one = client.result_bytes(first["id"])

        second = client.submit(SMALL_SPEC)
        assert second["_http_status"] == 200
        assert second["deduplicated"] is True
        assert second["id"] == first["id"]
        assert client.result_bytes(second["id"]) == bytes_one
        assert store.counter["jobs_deduplicated"] == 1
        assert store.counter["cells_simulated"] == 2

    def test_restart_dedupe_through_shared_result_cache(self, tmp_path):
        """A fresh store over a warm result cache simulates nothing."""
        payloads = []
        simulated = []
        for _ in range(2):
            store = JobStore(cache=tmp_path / "results",
                            derived=tmp_path / "derived", workers=2)
            server = make_server(store)
            threading.Thread(target=server.serve_forever,
                             daemon=True).start()
            client = ServiceClient(
                f"http://127.0.0.1:{server.server_address[1]}")
            job = client.submit(SMALL_SPEC)
            status = client.wait(job["id"], timeout_s=120)
            simulated.append(status["cells"]["simulated"])
            payloads.append(client.result_bytes(job["id"]))
            server.shutdown()
            server.server_close()
            store.close()
        assert simulated == [2, 0]
        assert payloads[0] == payloads[1]

    def test_concurrent_clients_share_one_store(self, service):
        client, store = service
        specs = [dict(SMALL_SPEC, benchmarks=[bench])
                 for bench in ("gcc", "mcf", "gcc", "mcf")]
        results = [None] * len(specs)
        errors = []

        def run(index):
            try:
                results[index] = ServiceClient(client.base_url).run(
                    specs[index], timeout_s=120)
            except Exception as error:  # noqa: BLE001 — surfaced below
                errors.append(error)

        threads = [threading.Thread(target=run, args=(i,))
                   for i in range(len(specs))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors
        assert results[0] == results[2]
        assert results[1] == results[3]
        assert results[0] != results[1]
        # The duplicate pair deduped to one job each.
        assert store.counter["jobs_submitted"] == 2
        assert store.counter["jobs_deduplicated"] == 2

    def test_result_before_completion_is_202_pending(self, service):
        client, store = service
        # Submit straight to the store but never start a server-side
        # worker race: ask for the result of a job that cannot be done
        # yet by submitting a larger grid and checking immediately.
        submitted = client.submit(dict(SMALL_SPEC,
                                       benchmarks=["gcc", "mcf", "swim"]))
        status, raw = client._request(
            "GET", f"/v1/jobs/{submitted['id']}/result")
        assert status in (200, 202)
        if status == 202:
            document = json.loads(raw)
            assert document["pending"] is True
            assert document["job"]["state"] in ("queued", "running")
        client.wait(submitted["id"], timeout_s=120)

    def test_invalid_spec_is_400_with_config_error_detail(self, service):
        client, _ = service
        with pytest.raises(ServiceError) as excinfo:
            client.submit({"designs": ["NOPE"]})
        assert excinfo.value.status == 400
        assert excinfo.value.code == "invalid_spec"
        # The detail is the typed ConfigError's own message.
        assert "job spec" in excinfo.value.detail
        with pytest.raises(ConfigError) as config_excinfo:
            validate_job_spec({"designs": ["NOPE"]})
        assert excinfo.value.detail == str(config_excinfo.value)

    def test_malformed_json_is_400_invalid_json(self, service):
        client, _ = service
        import urllib.request

        request = urllib.request.Request(
            f"{client.base_url}/v1/jobs", data=b"{not json",
            method="POST", headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400
        envelope = json.load(excinfo.value)["error"]
        assert envelope["code"] == "invalid_json"

    def test_unknown_job_and_bad_artifact_key(self, service):
        client, _ = service
        with pytest.raises(ServiceError) as excinfo:
            client.status("job-doesnotexist00")
        assert (excinfo.value.status, excinfo.value.code) == (
            404, "unknown_job")
        with pytest.raises(ServiceError) as excinfo:
            client.artifact("not-a-key")
        assert (excinfo.value.status, excinfo.value.code) == (
            400, "invalid_key")
        with pytest.raises(ServiceError) as excinfo:
            client.artifact("0" * 64)
        assert (excinfo.value.status, excinfo.value.code) == (
            404, "unknown_artifact")

    def test_warm_derived_artifact_served_by_key(self, service):
        client, store = service
        result = client.run(SMALL_SPEC, timeout_s=120)
        key = result["artifacts"]["grid.normalized"]
        served = client.artifact(key)
        assert served["lane"] == "derived"
        assert served["artifact"]["dataset"] == \
            result["normalized_time"]["dataset"]

    def test_result_cache_key_served_as_result_lane_artifact(self, service):
        client, store = service
        submitted = client.submit(SMALL_SPEC)
        status = client.wait(submitted["id"], timeout_s=120)
        # Every cell's provenance key resolves through the artifact
        # endpoint to the raw result document.
        manifest_metrics = status["manifest"]["metrics"]
        assert manifest_metrics["service.jobs_submitted"] >= 1
        result = client.result(submitted["id"])
        cell_key = store.get(submitted["id"]).cell_keys[0]
        served = client.artifact(cell_key)
        assert served["lane"] == "result"
        assert served["result"]["design"] == "SNUCA2"

    def test_healthz_exposes_all_metric_families(self, service):
        client, _ = service
        client.run(SMALL_SPEC, timeout_s=120)
        health = client.healthz()
        assert health["ok"] is True
        names = set(health["metrics"])
        assert any(name.startswith("service.") for name in names)
        assert any(name.startswith("runner.") for name in names)
        assert any(name.startswith("analysis.derived.") for name in names)
        assert health["jobs"]["done"] == 1

    def test_route_table_matches_handlers(self, service):
        """Every declared endpoint answers something other than 404."""
        client, _ = service
        submitted = client.submit(SMALL_SPEC)
        client.wait(submitted["id"], timeout_s=120)
        substitutions = {"{id}": submitted["id"], "{key}": "0" * 64}
        for method, path, _summary in ENDPOINTS:
            for template, value in substitutions.items():
                path = path.replace(template, value)
            status, raw = client._request(method, path,
                                          body=SMALL_SPEC
                                          if method == "POST" else None)
            if status in (400, 404):
                envelope = json.loads(raw)["error"]
                assert envelope["code"] != "not_found", (method, path)
            assert status != 405, (method, path)

    def test_error_codes_documented(self):
        for code in ("invalid_json", "invalid_spec", "unknown_job",
                     "unknown_artifact", "invalid_key", "not_found",
                     "method_not_allowed", "job_failed"):
            assert code in ERROR_CODES

"""Chaos suite for the production-hardened service (docs/ROBUSTNESS.md).

Each test kills the service a different way and checks the recovery
contract:

* ``TestKillNineRestart`` — a real ``repro serve`` subprocess with a
  journal dir, SIGKILLed mid-job, restarted over the same dirs: the job
  finishes under its original id, the result bytes are identical to an
  uninterrupted run's, and the second life simulates strictly fewer
  cells (completed cells replay from the result cache).
* ``TestJournalRecovery`` — deterministic in-process replays: a
  hand-written journal plus a pre-warmed cache resumes exactly the
  unfinished cells; a cleanly-finished job replays with zero cells
  simulated and byte-identical results; garbage journal lines degrade
  (counted, never fatal).
* ``TestAdmissionControl`` — flooding past ``max_active_jobs`` answers
  429 ``over_capacity`` with a ``Retry-After`` header, and the
  backoff-retrying client still completes.
* ``TestGracefulDrain`` — submits during a drain answer 503
  ``draining``, in-flight jobs finish, the journal gets a clean
  shutdown marker.
* ``TestTtlEviction`` — an expired job's status answers 410 ``gone``;
  resubmitting the spec resurrects the same deterministic id from the
  cache with zero simulation and identical bytes.

The subprocess test is the only wall-clock-dependent one; everything
else injects time (``reap(now=...)``) or uses tiny grids.
"""

import json
import os
import re
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.analysis.runner import execute_cells_detailed, grid_cell_specs
from repro.service import (
    JobStore,
    ServiceClient,
    ServiceError,
    job_key,
    make_server,
    validate_job_spec,
)
from repro.service.journal import JobJournal

SPEC = {"designs": ["SNUCA2", "TLC"], "benchmarks": ["gcc", "mcf"],
        "n_refs": 1_500}


def _store(tmp_path, **kwargs):
    kwargs.setdefault("cache", tmp_path / "results")
    kwargs.setdefault("derived", tmp_path / "derived")
    kwargs.setdefault("journal", tmp_path / "journal")
    kwargs.setdefault("workers", 2)
    return JobStore(**kwargs)


@pytest.fixture()
def serve_inproc(tmp_path):
    """Factory booting servers over one set of dirs; closes them all."""
    live = []

    def boot(**kwargs):
        store = _store(tmp_path, **kwargs)
        server = make_server(store)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        client = ServiceClient(
            f"http://127.0.0.1:{server.server_address[1]}")
        live.append((server, store))
        return client, store

    try:
        yield boot
    finally:
        for server, store in live:
            server.shutdown()
            server.server_close()
            store.close(timeout_s=60)


class TestJournalRecovery:
    def test_resume_simulates_only_unfinished_cells(self, tmp_path):
        """Deterministic crash replay: journal says 'submitted', cache
        holds 2 of 4 cells -> recovery simulates exactly the other 2."""
        spec = validate_job_spec(SPEC)
        key = job_key(spec)
        cells, _ = grid_cell_specs(
            designs=spec.designs, benchmarks=spec.benchmarks,
            n_refs=spec.n_refs, seed=spec.seed,
            warmup_fraction=spec.warmup_fraction, sanitize=spec.sanitize)
        # Pre-warm half the grid into the shared result cache — the
        # durable footprint of a server that died mid-job.
        execute_cells_detailed(cells[:2], cache=tmp_path / "results")
        with JobJournal(tmp_path / "journal" / "journal.jsonl") as journal:
            journal.record_submit(f"job-{key[:16]}", key, spec.as_dict())

        store = _store(tmp_path)
        try:
            stats = store.recover()
            assert stats["recovered_jobs"] == 1
            assert stats["resumed_jobs"] == 1
            assert stats["replayed_finished_jobs"] == 0
            store.start()
            job = store.get(f"job-{key[:16]}")
            assert job is not None, "recovered under the original id"
            deadline = time.monotonic() + 120
            while job.state not in ("done", "failed"):
                assert time.monotonic() < deadline
                time.sleep(0.05)
            assert job.state == "done"
            assert store.counter["cells_simulated"] == 2
            assert store.counter["cells_from_cache"] == 2
        finally:
            store.close()

    def test_finished_job_replays_byte_identically(self, tmp_path):
        """Life 1 finishes and shuts down cleanly; life 2 recovers the
        job, serves identical bytes, simulates nothing."""
        store = _store(tmp_path)
        store.start()
        job, created = store.submit(validate_job_spec(SPEC))
        assert created
        deadline = time.monotonic() + 120
        while job.state not in ("done", "failed"):
            assert time.monotonic() < deadline
            time.sleep(0.05)
        first_bytes = job.result_bytes
        assert store.shutdown(drain_timeout_s=60) is True

        second = _store(tmp_path)
        try:
            stats = second.recover()
            assert stats["replayed_finished_jobs"] == 1
            assert stats["clean_shutdown"] == 1
            second.start()
            replayed = second.get(job.id)
            deadline = time.monotonic() + 120
            while replayed.state not in ("done", "failed"):
                assert time.monotonic() < deadline
                time.sleep(0.05)
            assert replayed.state == "done"
            assert second.counter["cells_simulated"] == 0
            assert second.counter["cells_from_cache"] == 4
            assert replayed.result_bytes == first_bytes
        finally:
            second.close()

    def test_recover_is_idempotent(self, tmp_path):
        with JobJournal(tmp_path / "journal" / "journal.jsonl") as journal:
            spec = validate_job_spec(SPEC)
            key = job_key(spec)
            journal.record_submit(f"job-{key[:16]}", key, spec.as_dict())
        store = _store(tmp_path, workers=1)
        try:
            assert store.recover()["recovered_jobs"] == 1
            assert store.recover()["recovered_jobs"] == 0  # no double-enqueue
        finally:
            store.close()

    def test_garbage_journal_lines_degrade_not_crash(self, tmp_path):
        path = tmp_path / "journal" / "journal.jsonl"
        spec = validate_job_spec(SPEC)
        key = job_key(spec)
        with JobJournal(path) as journal:
            journal.record_submit(f"job-{key[:16]}", key, spec.as_dict())
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("{corrupt json\n")
            handle.write(json.dumps({"format": 99, "event": "submit"}) + "\n")
            handle.write(json.dumps(
                {"format": 1, "event": "cell", "job_id": "job-neverseen",
                 "state": "done"}) + "\n")
            handle.write('{"format": 1, "event": "fin')  # torn final write
        store = _store(tmp_path, workers=1)
        try:
            stats = store.recover()
            assert stats["recovered_jobs"] == 1
            assert stats["skipped_lines"] == 4
            assert store.lifecycle["journal_skipped_lines"] == 4
        finally:
            store.close()

    def test_lifecycle_counts_reach_the_job_manifest(self, tmp_path):
        store = _store(tmp_path, workers=2)
        store.start()
        job, _created = store.submit(validate_job_spec(SPEC))
        deadline = time.monotonic() + 120
        while job.state not in ("done", "failed"):
            assert time.monotonic() < deadline
            time.sleep(0.05)
        try:
            assert job.manifest["kind"] == "service.job"
            lifecycle = job.manifest["lifecycle"]
            # Stable zeros: every declared count present, even untouched.
            from repro.service import LIFECYCLE_COUNTS
            assert set(lifecycle) == set(LIFECYCLE_COUNTS)
            metrics = job.manifest["metrics"]
            assert "service.lifecycle.journal_events" in metrics
        finally:
            store.close()


class TestAdmissionControl:
    def test_flood_answers_429_with_retry_after(self, serve_inproc):
        client, store = serve_inproc(max_active_jobs=1, workers=1)
        first = client.submit(SPEC)  # occupies the single active slot
        with pytest.raises(ServiceError) as excinfo:
            client.submit(dict(SPEC, benchmarks=["swim"]))
        assert excinfo.value.status == 429
        assert excinfo.value.code == "over_capacity"
        assert excinfo.value.retry_after_s is not None
        assert store.lifecycle["admission_rejected"] >= 1
        # The raw response carries the actual Retry-After header.
        status, raw, headers = client._request(
            "POST", "/v1/jobs", dict(SPEC, benchmarks=["swim"]))
        assert status == 429
        assert float(headers["Retry-After"]) >= 1
        client.wait(first["id"], timeout_s=120)

    def test_retrying_client_rides_out_the_flood(self, serve_inproc):
        client, store = serve_inproc(max_active_jobs=1, workers=2)
        retrying = ServiceClient(client.base_url, retries=30,
                                 backoff_base_s=0.2, backoff_max_s=1.0)
        first = client.submit(SPEC)
        # Blocked now (slot taken), admitted once the first job drains.
        second = retrying.submit(dict(SPEC, benchmarks=["swim"]))
        assert second["id"] != first["id"]
        assert retrying.wait(second["id"], timeout_s=120)["state"] == "done"
        assert store.lifecycle["admission_rejected"] >= 1

    def test_queue_depth_cap_rejects_oversized_submit(self, tmp_path):
        store = _store(tmp_path, max_queued_cells=2, workers=1,
                       journal=None)
        from repro.service import AdmissionError
        try:
            with pytest.raises(AdmissionError):
                store.submit(validate_job_spec(SPEC))  # 4 cells > cap 2
        finally:
            store.close()


class TestGracefulDrain:
    def test_drain_rejects_submits_finishes_inflight_marks_clean(
            self, serve_inproc, tmp_path):
        client, store = serve_inproc(workers=2)
        submitted = client.submit(SPEC)
        store.begin_drain()
        assert client.healthz()["draining"] is True  # reads keep working
        with pytest.raises(ServiceError) as excinfo:
            client.submit(dict(SPEC, benchmarks=["swim"]))
        assert excinfo.value.status == 503
        assert excinfo.value.code == "draining"
        assert store.lifecycle["drain_rejected"] == 1
        assert store.shutdown(drain_timeout_s=120) is True
        # The in-flight job finished rather than being abandoned.
        assert store.get(submitted["id"]).state == "done"
        assert store.lifecycle["drain_clean"] == 1
        # The journal's final event is the clean marker.
        events = [json.loads(line) for line in
                  (tmp_path / "journal" / "journal.jsonl")
                  .read_text().splitlines()]
        assert events[-1]["event"] == "shutdown"
        assert events[-1]["clean"] is True

    def test_shutdown_is_idempotent(self, tmp_path):
        store = _store(tmp_path, workers=1)
        store.start()
        assert store.shutdown() is True
        assert store.shutdown() is True  # remembered verdict, no re-drain
        assert store.lifecycle["drains"] == 1


class TestTtlEviction:
    def test_expired_job_answers_410_then_resubmit_resurrects(
            self, serve_inproc):
        client, store = serve_inproc(job_ttl_s=3600.0, workers=2)
        submitted = client.submit(SPEC)
        client.wait(submitted["id"], timeout_s=120)
        first_bytes = client.result_bytes(submitted["id"])
        simulated = store.counter["cells_simulated"]

        assert store.reap(now=time.time() + 7200.0) == 1
        assert store.lifecycle["jobs_evicted"] == 1
        with pytest.raises(ServiceError) as excinfo:
            client.status(submitted["id"])
        assert excinfo.value.status == 410
        assert excinfo.value.code == "gone"
        with pytest.raises(ServiceError) as excinfo:
            client.result_bytes(submitted["id"])
        assert excinfo.value.status == 410

        # Resubmission: same deterministic id, zero new simulation,
        # identical bytes — the cache is the real durability layer.
        again = client.submit(SPEC)
        assert again["id"] == submitted["id"]
        assert again["deduplicated"] is False  # a fresh lifecycle
        client.wait(again["id"], timeout_s=120)
        assert client.result_bytes(again["id"]) == first_bytes
        assert store.counter["cells_simulated"] == simulated
        assert store.evicted_at(again["id"]) is None  # tombstone cleared

    def test_unfinished_jobs_are_never_reaped(self, tmp_path):
        store = _store(tmp_path, job_ttl_s=0.001, workers=1, journal=None)
        job, _ = store.submit(validate_job_spec(SPEC))
        try:
            assert store.reap(now=time.time() + 10.0) == 0
            assert store.get(job.id) is not None
        finally:
            store.close()

    def test_eviction_survives_restart_as_tombstone(self, tmp_path):
        store = _store(tmp_path, job_ttl_s=3600.0, workers=2)
        store.start()
        job, _ = store.submit(validate_job_spec(SPEC))
        deadline = time.monotonic() + 120
        while job.state not in ("done", "failed"):
            assert time.monotonic() < deadline
            time.sleep(0.05)
        assert store.reap(now=time.time() + 7200.0) == 1
        store.close()

        second = _store(tmp_path, workers=1)
        try:
            stats = second.recover()
            assert stats["evicted_tombstones"] == 1
            assert stats["recovered_jobs"] == 0
            assert second.evicted_at(job.id) is not None
        finally:
            second.close()


_URL_RE = re.compile(r"repro service on (http://[\d.]+:\d+)")


@pytest.mark.slow
class TestKillNineRestart:
    def _boot(self, tmp_path, extra=()):
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--workers", "1",
             "--cache-dir", str(tmp_path / "results"),
             "--derived-cache-dir", str(tmp_path / "derived"),
             "--journal-dir", str(tmp_path / "journal"), *extra],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
            env=dict(os.environ,
                     PYTHONPATH=os.path.join(os.path.dirname(__file__),
                                             os.pardir, "src")),
            cwd=str(tmp_path))
        url = None
        deadline = time.monotonic() + 60
        for line in process.stdout:
            match = _URL_RE.search(line)
            if match:
                url = match.group(1)
                break
            assert time.monotonic() < deadline, "server never announced"
        assert url, f"serve exited: {process.poll()}"
        # Drain remaining output in the background so the pipe never
        # fills and blocks the server.
        threading.Thread(target=process.stdout.read, daemon=True).start()
        return process, url

    def test_kill_nine_midjob_restart_resumes_byte_identically(
            self, tmp_path):
        spec = dict(SPEC, benchmarks=["gcc", "mcf", "swim", "applu"])

        # Control: what the result bytes should be, from a pristine
        # in-process run over separate dirs.
        control = JobStore(cache=tmp_path / "control-results",
                           derived=tmp_path / "control-derived", workers=2)
        control.start()
        control_job, _ = control.submit(validate_job_spec(spec))
        deadline = time.monotonic() + 180
        while control_job.state not in ("done", "failed"):
            assert time.monotonic() < deadline
            time.sleep(0.05)
        assert control_job.state == "done"
        control_bytes = control_job.result_bytes
        control.close()

        process, url = self._boot(tmp_path)
        client = ServiceClient(url)
        try:
            submitted = client.submit(spec)
            job_id = submitted["id"]
            # Let it make partial progress — at least one cell
            # simulated, then SIGKILL mid-job.
            deadline = time.monotonic() + 120
            while True:
                assert time.monotonic() < deadline
                health = client.healthz()
                if health["metrics"]["service.cells_simulated"] >= 1:
                    break
                time.sleep(0.05)
        finally:
            process.kill()  # SIGKILL: no drain, no journal marker
            process.wait(timeout=30)

        process, url = self._boot(tmp_path)
        client = ServiceClient(url)
        try:
            # The job came back under its original id, unprompted.
            status = client.wait(job_id, timeout_s=180)
            assert status["state"] == "done"
            restart_bytes = client.result_bytes(job_id)
            assert restart_bytes == control_bytes
            health = client.healthz()
            resumed = health["metrics"]["service.cells_simulated"]
            # Strictly fewer cells simulated in the second life: the
            # first life's completed cells replayed from the cache.
            assert 0 < resumed < 8
            assert health["metrics"]["service.lifecycle.resumed_jobs"] == 1
        finally:
            process.send_signal(signal.SIGTERM)
            assert process.wait(timeout=60) == 0  # graceful drain exit

        # After the SIGTERM drain, the journal ends with a clean marker.
        events = [json.loads(line) for line in
                  (tmp_path / "journal" / "journal.jsonl")
                  .read_text().splitlines() if line.strip()]
        assert events[-1] == {**events[-1], "event": "shutdown",
                              "clean": True}

"""Tests for the SNUCA2 baseline."""

import pytest

from repro.nuca.snuca import StaticNUCA
from repro.sim.memory import MainMemory


def make():
    return StaticNUCA(memory=MainMemory())


def addr_for_bank(design, bank, set_index=0, tag=1):
    return design.addr_map.rebuild(tag, set_index, bank)


class TestGeometry:
    def test_32_banks_on_8x4_grid(self):
        design = make()
        assert len(design.banks) == 32
        columns = {design._grid(b)[0] for b in range(32)}
        positions = {design._grid(b)[1] for b in range(32)}
        assert columns == set(range(8))
        assert positions == set(range(4))

    def test_uncontended_range_spans_table2(self):
        design = make()
        latencies = {design.uncontended_latency(addr_for_bank(design, b))
                     for b in range(32)}
        assert min(latencies) == 9
        assert max(latencies) in (32, 33)

    def test_rejects_wrong_config(self):
        from repro.core.config import TLC_BASE
        with pytest.raises(ValueError):
            StaticNUCA(config=TLC_BASE)


class TestNonUniformity:
    def test_near_bank_faster_than_far_bank(self):
        design = make()
        near = addr_for_bank(design, 4)   # column 4, position 0 (centre)
        far = addr_for_bank(design, 24)   # position 3
        design.install(near)
        design.install(far)
        near_out = design.access(near, time=0)
        far_out = design.access(far, time=10_000)
        assert near_out.lookup_latency < far_out.lookup_latency

    def test_hit_latency_matches_prediction_when_idle(self):
        design = make()
        addr = addr_for_bank(design, 10)
        design.install(addr)
        outcome = design.access(addr, time=500)
        assert outcome.hit
        assert outcome.lookup_latency == design.uncontended_latency(addr)
        assert outcome.predictable

    def test_latency_spread_wider_than_tlc(self):
        """The motivation for both DNUCA and TLC: static NUCA latency
        varies ~3.5x between nearest and furthest banks."""
        design = make()
        latencies = [design.uncontended_latency(addr_for_bank(design, b))
                     for b in range(32)]
        assert max(latencies) / min(latencies) > 3


class TestAccessPaths:
    def test_miss_fetches_and_fills(self):
        design = make()
        first = design.access(0xABC0, time=0)
        assert not first.hit
        assert design.access(0xABC0, time=5000).hit

    def test_write_allocates(self):
        design = make()
        design.access(0x5000, time=0, write=True)
        assert design.access(0x5000, time=1000).hit

    def test_one_bank_per_request(self):
        design = make()
        for i in range(8):
            design.access(i * 64, time=i * 200)
        assert design.banks_accessed_per_request == 1.0

    def test_contention_on_shared_column(self):
        design = make()
        a = addr_for_bank(design, 4, set_index=0)   # column 4, row 0
        b = addr_for_bank(design, 28, set_index=0)  # column 4, row 3
        design.install(a)
        design.install(b)
        design.access(b, time=0)   # long transfer up column 4
        delayed = design.access(a, time=1)
        # a's response returns while b's request/response occupy shared
        # edge links; depending on overlap it may or may not queue, but
        # timing must never go backwards.
        assert delayed.complete_time > 1

    def test_network_energy_positive(self):
        design = make()
        design.access(0x0, time=0)
        assert design.network_energy_j() > 0

    def test_reset_stats_clears_mesh_counters(self):
        design = make()
        design.access(0x0, time=0)
        design.reset_stats()
        assert design.mesh.bit_hops == 0
        assert design.network_energy_j() == 0.0

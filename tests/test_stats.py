"""Tests for counters, histograms, and utilization meters."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.stats import Counter, Histogram, UtilizationMeter


class TestCounter:
    def test_missing_name_is_zero(self):
        assert Counter()["nothing"] == 0

    def test_add_accumulates(self):
        c = Counter()
        c.add("hits")
        c.add("hits", 4)
        assert c["hits"] == 5

    def test_contains(self):
        c = Counter()
        c.add("x")
        assert "x" in c and "y" not in c

    def test_iteration_is_sorted(self):
        c = Counter()
        c.add("zeta")
        c.add("alpha")
        assert [name for name, _ in c] == ["alpha", "zeta"]

    def test_ratio(self):
        c = Counter()
        c.add("hits", 3)
        c.add("requests", 4)
        assert c.ratio("hits", "requests") == pytest.approx(0.75)

    def test_ratio_zero_denominator(self):
        assert Counter().ratio("a", "b") == 0.0

    def test_as_dict_is_a_copy(self):
        c = Counter()
        c.add("x")
        d = c.as_dict()
        d["x"] = 99
        assert c["x"] == 1


class TestHistogram:
    def test_empty_mean_is_zero(self):
        assert Histogram().mean == 0.0

    def test_mean(self):
        h = Histogram()
        for v in (10, 20, 30):
            h.record(v)
        assert h.mean == pytest.approx(20.0)

    def test_weighted_record(self):
        h = Histogram()
        h.record(5, weight=3)
        assert h.count == 3
        assert h.mean == pytest.approx(5.0)

    def test_min_max(self):
        h = Histogram()
        h.record(7)
        h.record(3)
        assert (h.min, h.max) == (3, 7)

    def test_min_of_empty_raises(self):
        with pytest.raises(ValueError):
            Histogram().min

    def test_fraction_at(self):
        h = Histogram()
        h.record(10, 3)
        h.record(20, 1)
        assert h.fraction_at(10) == pytest.approx(0.75)
        assert h.fraction_at(99) == 0.0

    def test_fraction_at_most(self):
        h = Histogram()
        for v in (1, 2, 3, 4):
            h.record(v)
        assert h.fraction_at_most(2) == pytest.approx(0.5)

    def test_percentile(self):
        h = Histogram()
        for v in range(1, 11):
            h.record(v)
        assert h.percentile(0.5) == 5
        assert h.percentile(1.0) == 10

    def test_percentile_validation(self):
        h = Histogram()
        h.record(1)
        with pytest.raises(ValueError):
            h.percentile(1.5)
        with pytest.raises(ValueError):
            Histogram().percentile(0.5)

    @given(st.lists(st.integers(min_value=0, max_value=1000), min_size=1))
    def test_mean_matches_reference(self, values):
        h = Histogram()
        for v in values:
            h.record(v)
        assert h.mean == pytest.approx(sum(values) / len(values))
        assert h.min == min(values)
        assert h.max == max(values)

    @given(st.lists(st.integers(min_value=0, max_value=100), min_size=1),
           st.floats(min_value=0.0, max_value=1.0))
    def test_percentile_bounds_mass(self, values, p):
        h = Histogram()
        for v in values:
            h.record(v)
        cut = h.percentile(p)
        at_most = sum(1 for v in values if v <= cut)
        assert at_most >= p * len(values) - 1e-9


class TestUtilizationMeter:
    def test_basic_utilization(self):
        m = UtilizationMeter(resources=4)
        m.busy(10)
        m.busy(10)
        assert m.utilization(100) == pytest.approx(20 / 400)

    def test_zero_elapsed(self):
        m = UtilizationMeter(resources=1)
        m.busy(5)
        assert m.utilization(0) == 0.0

    def test_invalid_resources(self):
        with pytest.raises(ValueError):
            UtilizationMeter(resources=0)

    def test_negative_busy_rejected(self):
        with pytest.raises(ValueError):
            UtilizationMeter(resources=1).busy(-1)

    @given(st.lists(st.integers(min_value=0, max_value=50), max_size=50),
           st.integers(min_value=1, max_value=8))
    def test_utilization_formula(self, busies, resources):
        m = UtilizationMeter(resources=resources)
        for b in busies:
            m.busy(b)
        assert m.utilization(1000) == pytest.approx(sum(busies) / (1000 * resources))

"""Property-based tests for the stats primitives (Hypothesis).

The grid figures are derived entirely from :class:`Histogram` and
:class:`UtilizationMeter` aggregates, so their invariants — percentile
monotonicity, CDF behavior, the utilization clamp — are load-bearing
for every table.  Hypothesis drives them with arbitrary event streams
instead of the unit tests' hand-picked samples.
"""

import pytest

pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.sim.stats import Histogram, UtilizationMeter  # noqa: E402

#: Arbitrary weighted samples: (value in cycles, weight >= 1).
samples = st.lists(
    st.tuples(st.integers(-1_000, 1_000), st.integers(1, 5)),
    min_size=1, max_size=50)

fractions = st.floats(0.0, 1.0, allow_nan=False)


def build(entries) -> Histogram:
    histogram = Histogram()
    for value, weight in entries:
        histogram.record(value, weight)
    return histogram


class TestHistogramProperties:
    @settings(max_examples=200)
    @given(entries=samples, p1=fractions, p2=fractions)
    def test_percentile_is_monotone(self, entries, p1, p2):
        histogram = build(entries)
        low, high = sorted((p1, p2))
        assert histogram.percentile(low) <= histogram.percentile(high)

    @settings(max_examples=200)
    @given(entries=samples, p=fractions)
    def test_percentile_stays_within_range(self, entries, p):
        histogram = build(entries)
        assert histogram.min <= histogram.percentile(p) <= histogram.max

    @settings(max_examples=200)
    @given(entries=samples)
    def test_percentile_endpoints(self, entries):
        histogram = build(entries)
        assert histogram.percentile(0.0) == histogram.min
        assert histogram.percentile(1.0) == histogram.max

    @settings(max_examples=200)
    @given(entries=samples)
    def test_mean_bounded_by_extremes(self, entries):
        histogram = build(entries)
        assert histogram.min <= histogram.mean <= histogram.max

    @settings(max_examples=200)
    @given(entries=samples, v1=st.integers(-1_100, 1_100),
           v2=st.integers(-1_100, 1_100))
    def test_cdf_is_monotone_and_normalized(self, entries, v1, v2):
        histogram = build(entries)
        low, high = sorted((v1, v2))
        assert histogram.fraction_at_most(low) <= histogram.fraction_at_most(high)
        assert histogram.fraction_at_most(histogram.max) == pytest.approx(1.0)

    @settings(max_examples=200)
    @given(entries=samples, p=fractions)
    def test_percentile_agrees_with_cdf(self, entries, p):
        """percentile(p) is the smallest recorded value whose CDF >= p."""
        histogram = build(entries)
        value = histogram.percentile(p)
        assert histogram.fraction_at_most(value) >= min(p, 1.0) - 1e-12
        if value > histogram.min:
            below = max(v for v, _ in histogram.items() if v < value)
            # Tolerance covers float rounding of p * count at the boundary.
            assert histogram.fraction_at_most(below) < p + 1e-9

    @settings(max_examples=100)
    @given(entries=samples)
    def test_count_and_clear_round_trip(self, entries):
        histogram = build(entries)
        assert histogram.count == sum(weight for _, weight in entries)
        histogram.clear()
        assert histogram.count == 0
        assert histogram.mean == 0.0


#: Streams of busy() charges plus the elapsed window to evaluate at.
busy_streams = st.lists(st.integers(0, 10_000), max_size=50)


class TestUtilizationMeterProperties:
    @settings(max_examples=200)
    @given(stream=busy_streams, resources=st.integers(1, 64),
           elapsed=st.integers(0, 5_000))
    def test_clamp_invariants(self, stream, resources, elapsed):
        meter = UtilizationMeter(resources)
        for cycles in stream:
            meter.busy(cycles)
        raw = meter.raw_utilization(elapsed)
        clamped = meter.utilization(elapsed)
        assert 0.0 <= clamped <= 1.0
        assert clamped == min(1.0, raw)
        assert meter.saturated == (raw > 1.0)

    @settings(max_examples=200)
    @given(stream=busy_streams, resources=st.integers(1, 64),
           elapsed=st.integers(1, 5_000))
    def test_busy_accounting_is_additive(self, stream, resources, elapsed):
        meter = UtilizationMeter(resources)
        for cycles in stream:
            meter.busy(cycles)
        assert meter.busy_cycles == sum(stream)
        assert meter.raw_utilization(elapsed) == pytest.approx(
            sum(stream) / (elapsed * resources))

    @settings(max_examples=100)
    @given(stream=busy_streams, resources=st.integers(1, 64))
    def test_saturation_latch_survives_later_reads(self, stream, resources):
        meter = UtilizationMeter(resources)
        meter.busy(resources * 10 + sum(stream))
        meter.utilization(1)  # forces a clamp
        assert meter.saturated
        meter.utilization(10 ** 9)  # a later in-range read keeps the latch
        assert meter.saturated
        meter.reset()
        assert not meter.saturated
        assert meter.busy_cycles == 0

    @settings(max_examples=100)
    @given(resources=st.integers(1, 64), elapsed=st.integers(-100, 0))
    def test_degenerate_window_reads_zero(self, resources, elapsed):
        meter = UtilizationMeter(resources)
        meter.busy(123)
        assert meter.utilization(elapsed) == 0.0
        assert not meter.saturated

    @given(cycles=st.integers(-1_000, -1))
    def test_negative_busy_rejected(self, cycles):
        meter = UtilizationMeter(4)
        with pytest.raises(ValueError):
            meter.busy(cycles)

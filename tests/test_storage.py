"""Tests for experiment-result persistence."""

import pytest

from repro.analysis.experiments import run_design_grid
from repro.analysis.storage import (
    load_grid,
    result_from_dict,
    result_to_dict,
    save_grid,
)
from repro.sim.system import run_system


@pytest.fixture(scope="module")
def small_grid():
    return run_design_grid(designs=("SNUCA2", "TLC"),
                           benchmarks=("perl",), n_refs=2_000)


class TestResultSerialization:
    def test_roundtrip(self):
        result = run_system("TLC", "perl", n_refs=1_500)
        restored = result_from_dict(result_to_dict(result))
        assert restored == result

    def test_unknown_field_rejected(self):
        result = run_system("TLC", "perl", n_refs=1_000)
        payload = result_to_dict(result)
        payload["bogus"] = 1
        with pytest.raises(ValueError, match="unknown"):
            result_from_dict(payload)

    def test_missing_field_rejected(self):
        result = run_system("TLC", "perl", n_refs=1_000)
        payload = result_to_dict(result)
        del payload["cycles"]
        with pytest.raises(ValueError, match="missing"):
            result_from_dict(payload)


class TestGridPersistence:
    def test_roundtrip(self, small_grid, tmp_path):
        path = str(tmp_path / "grid.json")
        save_grid(path, small_grid)
        restored = load_grid(path)
        assert restored.designs == small_grid.designs
        assert restored.benchmarks == small_grid.benchmarks
        assert restored.results == small_grid.results

    def test_normalization_survives_roundtrip(self, small_grid, tmp_path):
        path = str(tmp_path / "grid.json")
        save_grid(path, small_grid)
        restored = load_grid(path)
        assert (restored.normalized_execution_time("TLC", "perl")
                == small_grid.normalized_execution_time("TLC", "perl"))

    def test_version_mismatch_rejected(self, small_grid, tmp_path):
        import json
        path = tmp_path / "grid.json"
        save_grid(str(path), small_grid)
        document = json.loads(path.read_text())
        document["format_version"] = 99
        path.write_text(json.dumps(document))
        with pytest.raises(ValueError, match="unsupported"):
            load_grid(str(path))

    def test_json_is_human_readable(self, small_grid, tmp_path):
        path = tmp_path / "grid.json"
        save_grid(str(path), small_grid)
        text = path.read_text()
        assert '"design": "TLC"' in text


class TestCoverageValidation:
    def _document(self, small_grid, tmp_path):
        import json
        path = tmp_path / "grid.json"
        save_grid(str(path), small_grid)
        return path, json.loads(path.read_text())

    def test_truncated_cells_rejected(self, small_grid, tmp_path):
        import json
        path, document = self._document(small_grid, tmp_path)
        del document["cells"][0]
        path.write_text(json.dumps(document))
        with pytest.raises(ValueError, match="missing cell"):
            load_grid(str(path))

    def test_missing_cell_is_named(self, small_grid, tmp_path):
        import json
        path, document = self._document(small_grid, tmp_path)
        dropped = document["cells"].pop()
        path.write_text(json.dumps(document))
        with pytest.raises(ValueError) as excinfo:
            load_grid(str(path))
        assert dropped["design"] in str(excinfo.value)
        assert dropped["benchmark"] in str(excinfo.value)

    def test_undeclared_cell_rejected(self, small_grid, tmp_path):
        import copy
        import json
        path, document = self._document(small_grid, tmp_path)
        stray = copy.deepcopy(document["cells"][0])
        stray["benchmark"] = "mystery"
        document["cells"].append(stray)
        path.write_text(json.dumps(document))
        with pytest.raises(ValueError, match="outside the declared grid"):
            load_grid(str(path))

    def test_complete_document_still_loads(self, small_grid, tmp_path):
        path = tmp_path / "grid.json"
        save_grid(str(path), small_grid)
        assert load_grid(str(path)).results == small_grid.results

"""Tests for experiment-result persistence."""

import pytest

from repro.analysis.experiments import run_design_grid
from repro.analysis.storage import (
    load_grid,
    result_from_dict,
    result_to_dict,
    save_grid,
)
from repro.sim.system import run_system


@pytest.fixture(scope="module")
def small_grid():
    return run_design_grid(designs=("SNUCA2", "TLC"),
                           benchmarks=("perl",), n_refs=2_000)


class TestResultSerialization:
    def test_roundtrip(self):
        result = run_system("TLC", "perl", n_refs=1_500)
        restored = result_from_dict(result_to_dict(result))
        assert restored == result

    def test_unknown_field_rejected(self):
        result = run_system("TLC", "perl", n_refs=1_000)
        payload = result_to_dict(result)
        payload["bogus"] = 1
        with pytest.raises(ValueError, match="unknown"):
            result_from_dict(payload)

    def test_missing_field_rejected(self):
        result = run_system("TLC", "perl", n_refs=1_000)
        payload = result_to_dict(result)
        del payload["cycles"]
        with pytest.raises(ValueError, match="missing"):
            result_from_dict(payload)


class TestGridPersistence:
    def test_roundtrip(self, small_grid, tmp_path):
        path = str(tmp_path / "grid.json")
        save_grid(path, small_grid)
        restored = load_grid(path)
        assert restored.designs == small_grid.designs
        assert restored.benchmarks == small_grid.benchmarks
        assert restored.results == small_grid.results

    def test_normalization_survives_roundtrip(self, small_grid, tmp_path):
        path = str(tmp_path / "grid.json")
        save_grid(path, small_grid)
        restored = load_grid(path)
        assert (restored.normalized_execution_time("TLC", "perl")
                == small_grid.normalized_execution_time("TLC", "perl"))

    def test_version_mismatch_rejected(self, small_grid, tmp_path):
        import json
        path = tmp_path / "grid.json"
        save_grid(str(path), small_grid)
        document = json.loads(path.read_text())
        document["format_version"] = 99
        path.write_text(json.dumps(document))
        with pytest.raises(ValueError, match="unsupported"):
            load_grid(str(path))

    def test_json_is_human_readable(self, small_grid, tmp_path):
        path = tmp_path / "grid.json"
        save_grid(str(path), small_grid)
        text = path.read_text()
        assert '"design": "TLC"' in text


class TestCoverageValidation:
    def _document(self, small_grid, tmp_path):
        import json
        path = tmp_path / "grid.json"
        save_grid(str(path), small_grid)
        return path, json.loads(path.read_text())

    def test_truncated_cells_rejected(self, small_grid, tmp_path):
        import json
        path, document = self._document(small_grid, tmp_path)
        del document["cells"][0]
        path.write_text(json.dumps(document))
        with pytest.raises(ValueError, match="missing cell"):
            load_grid(str(path))

    def test_missing_cell_is_named(self, small_grid, tmp_path):
        import json
        path, document = self._document(small_grid, tmp_path)
        dropped = document["cells"].pop()
        path.write_text(json.dumps(document))
        with pytest.raises(ValueError) as excinfo:
            load_grid(str(path))
        assert dropped["design"] in str(excinfo.value)
        assert dropped["benchmark"] in str(excinfo.value)

    def test_undeclared_cell_rejected(self, small_grid, tmp_path):
        import copy
        import json
        path, document = self._document(small_grid, tmp_path)
        stray = copy.deepcopy(document["cells"][0])
        stray["benchmark"] = "mystery"
        document["cells"].append(stray)
        path.write_text(json.dumps(document))
        with pytest.raises(ValueError, match="outside the declared grid"):
            load_grid(str(path))

    def test_complete_document_still_loads(self, small_grid, tmp_path):
        path = tmp_path / "grid.json"
        save_grid(str(path), small_grid)
        assert load_grid(str(path)).results == small_grid.results


def _result_with_stats(stats):
    """A minimal result differing only in its ``stats`` mapping."""
    from tests.test_derived import make_result
    import dataclasses

    return dataclasses.replace(make_result("TLC", "gcc", 0), stats=stats)


class TestStatsKeyFidelity:
    """Regression: JSON object keys are always strings, so the v1
    encoding silently converted integer stat keys (per-distance or
    per-bank breakdowns) to strings — a saved-then-loaded grid compared
    unequal to the grid that produced it."""

    def test_integer_keys_survive_roundtrip(self):
        result = _result_with_stats({0: 10, 7: 3, "close_hits": 5})
        restored = result_from_dict(result_to_dict(result))
        assert restored == result
        assert restored.stats == {0: 10, 7: 3, "close_hits": 5}
        assert all(isinstance(k, type(orig))
                   for k, orig in zip(sorted(restored.stats, key=str),
                                      sorted(result.stats, key=str)))

    def test_grid_roundtrip_with_integer_keys(self, tmp_path):
        from repro.analysis.experiments import ExperimentGrid

        grid = ExperimentGrid(
            ("TLC",), ("gcc",),
            {("TLC", "gcc"): _result_with_stats({3: 1, 12: 4})})
        path = str(tmp_path / "grid.json")
        save_grid(path, grid)
        assert load_grid(path).results == grid.results

    def test_legacy_v1_document_still_loads(self, tmp_path):
        """v1 documents encoded stats as a JSON object; keep reading
        them (their stringified keys are unrecoverable and kept as-is)."""
        import json

        result = _result_with_stats({"close_hits": 5})
        path = tmp_path / "grid.json"
        legacy_payload = result_to_dict(result)
        legacy_payload["stats"] = {"close_hits": 5}  # v1 object form
        path.write_text(json.dumps({
            "format_version": 1,
            "designs": ["TLC"],
            "benchmarks": ["gcc"],
            "cells": [{"design": "TLC", "benchmark": "gcc",
                       "result": legacy_payload}],
        }))
        loaded = load_grid(str(path))
        assert loaded.results[("TLC", "gcc")].stats == {"close_hits": 5}

    def test_malformed_pair_list_rejected(self):
        result = _result_with_stats({"a": 1})
        payload = result_to_dict(result)
        payload["stats"] = [["a", 1, "extra"]]
        with pytest.raises(ValueError, match="malformed stats pair"):
            result_from_dict(payload)
        payload["stats"] = "not-a-mapping"
        with pytest.raises(ValueError, match="pair list"):
            result_from_dict(payload)

    def test_property_arbitrary_stats_roundtrip(self):
        from hypothesis import given, settings, strategies as st

        keys = st.one_of(st.integers(min_value=-10**6, max_value=10**6),
                         st.text(min_size=0, max_size=20))
        values = st.one_of(st.integers(min_value=-10**9, max_value=10**9),
                           st.floats(allow_nan=False, allow_infinity=False))
        stats_dicts = st.dictionaries(keys, values, max_size=12)

        @given(stats=stats_dicts)
        @settings(max_examples=60, deadline=None)
        def roundtrip(stats):
            result = _result_with_stats(stats)
            restored = result_from_dict(result_to_dict(result))
            assert restored == result
            assert {type(k) for k in restored.stats} == {
                type(k) for k in stats}

        roundtrip()


class TestContentDigestKeying:
    """Regression: the ``content:`` fallback fingerprint
    (``ExperimentGrid.cell_keys`` on hand-built grids) hashed payloads
    with ``json.dumps(sort_keys=True)``, which stringifies non-string
    dict keys — ``{0: 3}`` and ``{"0": 3}`` nested inside a stats value
    collided on one digest, and a stats value mixing int and str keys
    crashed the sort outright."""

    def test_nested_key_types_do_not_collide(self):
        from repro.analysis.storage import integrity_digest

        with_ints = _result_with_stats({"per_bank": {0: 3, 1: 4}})
        with_strs = _result_with_stats({"per_bank": {"0": 3, "1": 4}})
        assert (integrity_digest(result_to_dict(with_ints))
                != integrity_digest(result_to_dict(with_strs)))

    def test_top_level_key_types_do_not_collide(self):
        from repro.analysis.storage import integrity_digest

        assert (integrity_digest(result_to_dict(_result_with_stats({3: 5})))
                != integrity_digest(result_to_dict(_result_with_stats({"3": 5}))))

    def test_mixed_nested_keys_digest_without_crashing(self):
        from repro.analysis.storage import integrity_digest

        result = _result_with_stats({"per_bank": {0: 3, "spill": 4}})
        digest = integrity_digest(result_to_dict(result))
        assert len(digest) == 64

    def test_digest_is_insertion_order_insensitive(self):
        from repro.analysis.storage import integrity_digest

        a = _result_with_stats({"per_bank": {0: 3, "x": 4}, 3: 9, "z": 1})
        b = _result_with_stats({"z": 1, 3: 9, "per_bank": {"x": 4, 0: 3}})
        assert (integrity_digest(result_to_dict(a))
                == integrity_digest(result_to_dict(b)))

    def test_hand_built_grid_cell_keys_with_integer_stats(self):
        """The whole chain the derived lane relies on: a hand-built
        grid with integer stat keys (no runner provenance) yields
        distinct, stable ``content:`` keys."""
        from repro.analysis.experiments import ExperimentGrid

        def grid_with(stats):
            return ExperimentGrid(
                ("TLC",), ("gcc",),
                {("TLC", "gcc"): _result_with_stats(stats)})

        keyed_int = grid_with({"per_bank": {0: 3}, 7: 1})
        keyed_str = grid_with({"per_bank": {"0": 3}, 7: 1})
        (key_int,) = keyed_int.cell_keys()
        (key_str,) = keyed_str.cell_keys()
        assert key_int.startswith("content:")
        assert key_int != key_str
        assert keyed_int.cell_keys() == (key_int,)  # deterministic

    def test_saved_grid_with_integer_stats_keeps_its_content_key(self, tmp_path):
        """Top-level integer stat keys survive the storage-v2 pair-list
        round trip, so the loaded grid fingerprints identically."""
        from repro.analysis.experiments import ExperimentGrid

        grid = ExperimentGrid(
            ("TLC",), ("gcc",),
            {("TLC", "gcc"): _result_with_stats({3: 1, 12: 4, "hits": 2})})
        path = str(tmp_path / "grid.json")
        save_grid(path, grid)
        assert load_grid(path).cell_keys() == grid.cell_keys()

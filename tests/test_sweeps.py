"""Tests for the parameter-sensitivity sweeps."""

import pytest

from repro.analysis.sweeps import (
    dependence_sweep,
    frequency_sweep,
    memory_latency_sweep,
)


class TestMemoryLatencySweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        return memory_latency_sweep(benchmark="gcc",
                                    latencies=(100, 300, 900),
                                    n_refs=4_000)

    def test_shape(self, sweep):
        assert [latency for latency, _ in sweep] == [100, 300, 900]
        for _, row in sweep:
            assert set(row) == {"SNUCA2", "TLC"}

    def test_slower_memory_slower_execution(self, sweep):
        for design in ("SNUCA2", "TLC"):
            cycles = [row[design] for _, row in sweep]
            assert cycles == sorted(cycles)

    def test_tlc_advantage_grows_with_faster_memory(self, sweep):
        """With fast memory, L2 lookup latency dominates the stall
        budget, so TLC's flat 13 cycles matter more."""
        ratios = [row["TLC"] / row["SNUCA2"] for _, row in sweep]
        assert ratios[0] < ratios[-1] + 0.02
        assert all(r < 1.0 for r in ratios)


class TestFrequencySweep:
    def test_bank_cycles_scale_with_frequency(self):
        rows = frequency_sweep(frequencies_ghz=(5.0, 10.0, 20.0))
        bank_cycles = [row[1] for row in rows]
        assert bank_cycles[0] < bank_cycles[1] < bank_cycles[2]

    def test_paper_design_point(self):
        rows = frequency_sweep(frequencies_ghz=(10.0,))
        ghz, bank_cycles, line_cycles, usable = rows[0]
        assert bank_cycles == 8
        assert line_cycles == 1
        assert usable

    def test_line_stays_single_cycle_at_slower_clocks(self):
        rows = frequency_sweep(frequencies_ghz=(2.5, 5.0))
        for _, _, line_cycles, usable in rows:
            assert line_cycles == 1
            assert usable

    def test_line_needs_more_cycles_at_extreme_clocks(self):
        rows = frequency_sweep(frequencies_ghz=(40.0,))
        _, _, line_cycles, _ = rows[0]
        assert line_cycles >= 2  # 25 ps cycle < 77 ps flight


class TestSweepRunnerIntegration:
    def test_memory_sweep_parallel_matches_serial(self):
        kwargs = dict(benchmark="gcc", latencies=(150, 600),
                      designs=("SNUCA2",), n_refs=2_000)
        assert (memory_latency_sweep(workers=1, **kwargs)
                == memory_latency_sweep(workers=2, **kwargs))

    def test_dependence_sweep_cached_rerun_matches(self, tmp_path):
        from repro.analysis.runner import ResultCache

        kwargs = dict(fractions=(0.0, 0.8), designs=("TLC",), n_refs=2_000)
        cold = dependence_sweep(cache=ResultCache(tmp_path), **kwargs)
        warm_cache = ResultCache(tmp_path)
        warm = dependence_sweep(cache=warm_cache, **kwargs)
        assert warm == cold
        assert warm_cache.hits == 2 and warm_cache.stores == 0


class TestWarmupFractionThreading:
    """Regression: the sweeps ignored ``warmup_fraction`` — every cell
    silently ran at the CellSpec default regardless of the argument."""

    def test_dependence_sweep_threads_warmup_into_cells(self, tmp_path):
        from repro.analysis.runner import ResultCache

        kwargs = dict(fractions=(0.5,), designs=("TLC",), n_refs=1_500)
        cache = ResultCache(tmp_path)
        dependence_sweep(warmup_fraction=0.3, cache=cache, **kwargs)
        assert cache.stores == 1
        dependence_sweep(warmup_fraction=0.0, cache=cache, **kwargs)
        # A different warmup is a different cell: no hit, a second store.
        assert cache.stores == 2 and cache.hits == 0

    def test_memory_sweep_threads_warmup_into_cells(self, tmp_path):
        from repro.analysis.runner import ResultCache

        kwargs = dict(benchmark="gcc", latencies=(300,), designs=("TLC",),
                      n_refs=1_500)
        cache = ResultCache(tmp_path)
        memory_latency_sweep(warmup_fraction=0.3, cache=cache, **kwargs)
        memory_latency_sweep(warmup_fraction=0.1, cache=cache, **kwargs)
        assert cache.stores == 2 and cache.hits == 0


class TestBackendThreading:
    """Regression: the sweeps never threaded ``backend`` into their
    ``CellSpec``s (unlike ``experiments.py``) — every cell silently ran
    the reference backend, and a batched sweep shared cache entries
    with a reference one."""

    def test_memory_sweep_threads_backend_into_cells(self, tmp_path):
        from repro.analysis.runner import ResultCache

        kwargs = dict(benchmark="gcc", latencies=(300,), designs=("TLC",),
                      n_refs=1_500)
        cache = ResultCache(tmp_path)
        memory_latency_sweep(backend="reference", cache=cache, **kwargs)
        assert cache.stores == 1
        pytest.importorskip("numpy")
        memory_latency_sweep(backend="batched", cache=cache, **kwargs)
        # A different backend is a different cell: no hit, a new store.
        assert cache.stores == 2 and cache.hits == 0

    def test_dependence_sweep_backends_agree(self, tmp_path):
        pytest.importorskip("numpy")
        from repro.analysis.runner import ResultCache

        kwargs = dict(fractions=(0.0, 0.6), designs=("SNUCA2", "TLC"),
                      n_refs=1_500)
        cache = ResultCache(tmp_path)
        reference = dependence_sweep(backend="reference", cache=cache,
                                     **kwargs)
        batched = dependence_sweep(backend="batched", cache=cache, **kwargs)
        # Byte-identical rows, but from disjoint cache entries.
        assert batched == reference
        assert cache.hits == 0 and cache.stores == 8

    def test_sweeps_reject_unknown_backend(self):
        from repro.core.config import ConfigError

        with pytest.raises(ConfigError, match="backend"):
            memory_latency_sweep(benchmark="gcc", latencies=(300,),
                                 designs=("TLC",), n_refs=500,
                                 backend="nope")


class TestDependenceSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        return dependence_sweep(fractions=(0.0, 0.8), n_refs=4_000)

    def test_dependence_slows_everything(self, sweep):
        for design in ("SNUCA2", "TLC"):
            assert sweep[1][1][design] > sweep[0][1][design]

    def test_gap_widens_with_dependence(self, sweep):
        """Pointer chases expose the full lookup-latency difference."""
        gap_low = sweep[0][1]["SNUCA2"] / sweep[0][1]["TLC"]
        gap_high = sweep[1][1]["SNUCA2"] / sweep[1][1]["TLC"]
        assert gap_high > gap_low

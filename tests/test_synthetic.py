"""Tests for the synthetic trace generators."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads.synthetic import (
    L2_CAPACITY_BLOCKS,
    TraceSpec,
    generate_trace,
    resident_block_addresses,
    scatter_block,
    _scatter_array,
)


class TestTraceSpecValidation:
    def test_defaults_valid(self):
        TraceSpec(mean_gap=10.0)

    def test_gap_too_small(self):
        with pytest.raises(ValueError):
            TraceSpec(mean_gap=0.5)

    def test_fractions_must_sum_to_one_or_less(self):
        with pytest.raises(ValueError):
            TraceSpec(mean_gap=10, stream_fraction=0.7, cold_fraction=0.5)

    def test_probabilities_bounded(self):
        with pytest.raises(ValueError):
            TraceSpec(mean_gap=10, write_fraction=1.5)

    def test_interleave_bounded(self):
        with pytest.raises(ValueError):
            TraceSpec(mean_gap=10, stream_blocks=4, stream_interleave=8)

    def test_hot_fraction_derived(self):
        spec = TraceSpec(mean_gap=10, stream_fraction=0.3, cold_fraction=0.2)
        assert spec.hot_fraction == pytest.approx(0.5)


class TestScatter:
    def test_bijective_on_large_range(self):
        xs = np.arange(500_000, dtype=np.int64)
        ys = _scatter_array(xs)
        assert len(np.unique(ys)) == len(xs)

    def test_scalar_matches_vector(self):
        xs = np.array([0, 1, 12345, 2**30], dtype=np.int64)
        ys = _scatter_array(xs)
        for x, y in zip(xs, ys):
            assert scatter_block(int(x)) == int(y)

    def test_output_within_40_bits(self):
        assert scatter_block(2**39) < 2**40

    def test_tags_become_diverse(self):
        """Consecutive blocks must not share tag bits after scattering."""
        tags = {scatter_block(b) >> 14 for b in range(100)}
        assert len(tags) > 90


class TestGeneration:
    def test_deterministic_for_seed(self):
        spec = TraceSpec(mean_gap=20.0, hot_blocks=1000)
        assert generate_trace(spec, 500, seed=3) == generate_trace(spec, 500, seed=3)

    def test_different_seeds_differ(self):
        spec = TraceSpec(mean_gap=20.0, hot_blocks=1000)
        assert generate_trace(spec, 500, seed=3) != generate_trace(spec, 500, seed=4)

    def test_length(self):
        spec = TraceSpec(mean_gap=20.0)
        assert len(generate_trace(spec, 777, seed=0)) == 777

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            generate_trace(TraceSpec(mean_gap=10), 0)

    def test_addresses_block_aligned(self):
        spec = TraceSpec(mean_gap=10.0, stream_fraction=0.3, cold_fraction=0.3)
        for ref in generate_trace(spec, 300, seed=1):
            assert ref.addr % 64 == 0

    def test_mean_gap_approximately_respected(self):
        spec = TraceSpec(mean_gap=50.0)
        trace = generate_trace(spec, 20_000, seed=2)
        mean = sum(r.gap for r in trace) / len(trace)
        assert mean == pytest.approx(50.0, rel=0.05)

    def test_write_fraction_respected(self):
        spec = TraceSpec(mean_gap=10.0, write_fraction=0.4)
        trace = generate_trace(spec, 20_000, seed=2)
        frac = sum(r.write for r in trace) / len(trace)
        assert frac == pytest.approx(0.4, abs=0.02)

    def test_writes_are_never_dependent(self):
        spec = TraceSpec(mean_gap=10.0, write_fraction=0.5,
                         dependent_fraction=0.9)
        for ref in generate_trace(spec, 2_000, seed=0):
            assert not (ref.write and ref.dependent)

    def test_pure_hot_spec_stays_in_hot_population(self):
        spec = TraceSpec(mean_gap=10.0, hot_blocks=256, scatter=False)
        trace = generate_trace(spec, 5_000, seed=0)
        blocks = {r.addr // 64 for r in trace}
        assert blocks <= set(range(256))

    def test_hot_skew_concentrates_references(self):
        flat = TraceSpec(mean_gap=10.0, hot_blocks=10_000, hot_skew=1.0,
                         scatter=False)
        skewed = TraceSpec(mean_gap=10.0, hot_blocks=10_000, hot_skew=4.0,
                           scatter=False)
        def top100_mass(spec):
            trace = generate_trace(spec, 20_000, seed=5)
            return sum(1 for r in trace if r.addr // 64 < 100) / len(trace)
        assert top100_mass(skewed) > 3 * top100_mass(flat)

    def test_stream_never_repeats_within_footprint(self):
        spec = TraceSpec(mean_gap=10.0, stream_fraction=1.0,
                         stream_blocks=1 << 22, scatter=False)
        trace = generate_trace(spec, 10_000, seed=0)
        addrs = [r.addr for r in trace]
        assert len(set(addrs)) == len(addrs)

    def test_interleaved_streams_advance_in_lanes(self):
        spec = TraceSpec(mean_gap=10.0, stream_fraction=1.0,
                         stream_blocks=1 << 20, stream_interleave=4,
                         scatter=False)
        trace = generate_trace(spec, 100, seed=0)
        blocks = [r.addr // 64 for r in trace]
        lane_size = (1 << 20) // 4
        lanes = sorted({b % (1 << 26) // lane_size for b in blocks[:4]})
        assert len(lanes) == 4


class TestResidentBlocks:
    def test_hot_only_spec(self):
        spec = TraceSpec(mean_gap=10.0, hot_blocks=100, scatter=False)
        resident = resident_block_addresses(spec)
        assert len(resident) == 100
        # Least popular (highest rank) first.
        assert resident[0] == 99 * 64
        assert resident[-1] == 0

    def test_stream_residue_bounded_by_capacity(self):
        spec = TraceSpec(mean_gap=10.0, hot_blocks=10,
                         stream_fraction=0.5, stream_blocks=1 << 23)
        resident = resident_block_addresses(spec)
        assert len(resident) <= L2_CAPACITY_BLOCKS + 10

    def test_residue_addresses_unique(self):
        spec = TraceSpec(mean_gap=10.0, hot_blocks=50,
                         stream_fraction=0.5, stream_blocks=1 << 20,
                         stream_interleave=4)
        resident = resident_block_addresses(spec)
        assert len(set(resident)) == len(resident)

    def test_scatter_consistent_with_trace(self):
        """Pre-warmed hot blocks must be the blocks the trace references."""
        spec = TraceSpec(mean_gap=10.0, hot_blocks=64)
        resident = set(resident_block_addresses(spec))
        trace = generate_trace(spec, 2_000, seed=1)
        assert {r.addr for r in trace} <= resident


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=1, max_value=10_000),
       st.integers(min_value=0, max_value=2**31))
def test_generation_deterministic_property(n, seed):
    spec = TraceSpec(mean_gap=15.0, hot_blocks=512, stream_fraction=0.2)
    assert generate_trace(spec, n, seed) == generate_trace(spec, n, seed)

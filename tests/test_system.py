"""Integration tests: run_system across designs and benchmarks."""

import pytest

from repro.sim.system import System, run_system
from repro.workloads.synthetic import TraceSpec, generate_trace

SMALL = dict(n_refs=3_000, warmup_fraction=0.3)


class TestRunSystem:
    def test_returns_all_metrics(self):
        result = run_system("TLC", "perl", **SMALL)
        assert result.design == "TLC"
        assert result.benchmark == "perl"
        assert result.cycles > 0
        assert result.instructions > 0
        assert result.l2_requests > 0
        assert result.l2_hits + result.l2_misses == result.l2_requests
        assert 0 <= result.link_utilization <= 1
        assert result.network_power_w > 0

    def test_deterministic(self):
        a = run_system("TLC", "bzip", seed=11, **SMALL)
        b = run_system("TLC", "bzip", seed=11, **SMALL)
        assert a.cycles == b.cycles
        assert a.stats == b.stats

    def test_seed_changes_outcome(self):
        a = run_system("TLC", "bzip", seed=1, **SMALL)
        b = run_system("TLC", "bzip", seed=2, **SMALL)
        assert a.cycles != b.cycles

    @pytest.mark.parametrize("design", [
        "TLC", "TLCopt1000", "TLCopt500", "TLCopt350", "SNUCA2", "DNUCA"])
    def test_every_design_runs(self, design):
        result = run_system(design, "perl", n_refs=1_500)
        assert result.cycles > 0

    @pytest.mark.parametrize("design", ["TLC", "DNUCA"])
    def test_streaming_benchmark_runs(self, design):
        result = run_system(design, "lucas", n_refs=1_500)
        assert result.miss_ratio > 0.5

    def test_shared_trace_reuse(self):
        spec = TraceSpec(mean_gap=30.0, hot_blocks=500)
        trace = generate_trace(spec, 2_000, seed=5)
        a = run_system("TLC", "custom", trace=trace)
        b = run_system("SNUCA2", "custom", trace=trace)
        assert a.l2_requests == b.l2_requests

    def test_design_overrides(self):
        result = run_system("TLC", "perl", replacement="frequency", **SMALL)
        assert result.cycles > 0

    def test_prewarm_spec_warms_custom_traces(self):
        spec = TraceSpec(mean_gap=30.0, hot_blocks=2_000)
        trace = generate_trace(spec, 3_000, seed=4)
        cold = run_system("TLC", "custom", trace=trace)
        warm = run_system("TLC", "custom", trace=trace, prewarm_spec=spec)
        assert warm.l2_misses < cold.l2_misses

    def test_derived_metrics(self):
        result = run_system("TLC", "swim", **SMALL)
        assert result.miss_ratio == pytest.approx(
            result.l2_misses / result.l2_requests)
        assert result.misses_per_kinstr == pytest.approx(
            1000 * result.l2_misses / result.instructions)
        assert result.ipc == pytest.approx(result.instructions / result.cycles)


class TestSystemClass:
    def test_memory_shared_with_design(self):
        system = System("TLC")
        assert system.l2.memory is system.memory

    def test_run_uses_warmup(self):
        spec = TraceSpec(mean_gap=30.0, hot_blocks=200)
        trace = generate_trace(spec, 1_000, seed=0)
        system = System("TLC")
        result = system.run(trace, warmup_refs=500)
        assert result.l2_requests == 500  # only measured half


class TestCrossDesignInvariants:
    def test_statically_mapped_designs_agree_on_misses(self):
        """TLC and SNUCA2 are both 4-way LRU with the same capacity, so
        an identical trace produces identical hit/miss behaviour."""
        spec = TraceSpec(mean_gap=25.0, hot_blocks=3_000, cold_fraction=0.1)
        trace = generate_trace(spec, 4_000, seed=9)
        tlc = run_system("TLC", "custom", trace=trace)
        snuca = run_system("SNUCA2", "custom", trace=trace)
        assert tlc.l2_misses == snuca.l2_misses

    def test_tlc_always_single_bank(self):
        result = run_system("TLC", "apache", **SMALL)
        assert result.banks_accessed_per_request == 1.0

    def test_dnuca_at_least_two_banks(self):
        result = run_system("DNUCA", "apache", **SMALL)
        assert result.banks_accessed_per_request >= 2.0

    def test_tlc_lookup_latency_stays_in_table2_range(self):
        """The headline claim: all TLC storage reachable in 10-16 cycles
        (plus contention, so the mean stays in a narrow band)."""
        for benchmark in ("perl", "lucas"):
            result = run_system("TLC", benchmark, **SMALL)
            assert 10 <= result.mean_lookup_latency <= 18

    def test_tlc_more_predictable_than_dnuca(self):
        for benchmark in ("gcc",):
            tlc = run_system("TLC", benchmark, **SMALL)
            dnuca = run_system("DNUCA", benchmark, **SMALL)
            assert (tlc.predictable_lookup_fraction
                    > dnuca.predictable_lookup_fraction)

"""Tests for repro.tech: the technology parameter object."""

import math

import pytest

from repro.tech import TECH_45NM, Technology, C_LIGHT


class TestTechnologyBasics:
    def test_default_is_45nm_10ghz(self):
        assert TECH_45NM.feature_nm == 45.0
        assert TECH_45NM.frequency_hz == 10e9

    def test_cycle_time_is_100ps(self):
        assert TECH_45NM.cycle_s == pytest.approx(100e-12)
        assert TECH_45NM.cycle_ps == pytest.approx(100.0)

    def test_technology_is_immutable(self):
        with pytest.raises(Exception):
            TECH_45NM.frequency_hz = 1e9  # frozen dataclass

    def test_custom_design_point(self):
        slow = Technology(name="90nm-5GHz", feature_nm=90.0, frequency_hz=5e9)
        assert slow.cycle_s == pytest.approx(200e-12)


class TestWaveVelocity:
    def test_velocity_below_speed_of_light(self):
        assert TECH_45NM.wave_velocity < C_LIGHT

    def test_velocity_follows_dielectric(self):
        expected = C_LIGHT / math.sqrt(TECH_45NM.dielectric_er)
        assert TECH_45NM.wave_velocity == pytest.approx(expected)

    def test_tl_flight_one_cm_under_a_cycle(self):
        # The paper's key fact: ~1 cm of transmission line flies in about
        # one 10 GHz cycle (v ~ 1.8e8 m/s -> 55 ps for 1 cm).
        cycles = TECH_45NM.tl_flight_cycles(1.0e-2)
        assert 0.3 < cycles < 1.0

    def test_tl_flight_scales_linearly(self):
        one = TECH_45NM.tl_flight_cycles(1.0e-2)
        two = TECH_45NM.tl_flight_cycles(2.0e-2)
        assert two == pytest.approx(2.0 * one)


class TestConventionalWireDelay:
    def test_repeated_wire_much_slower_than_tl(self):
        length = 1.3e-2
        conventional = TECH_45NM.conventional_delay_cycles(length)
        tline = TECH_45NM.tl_flight_cycles(length)
        # Section 1: transmission lines reduce delay by up to ~30x.
        assert conventional / tline > 10

    def test_cross_chip_conventional_delay_tens_of_cycles(self):
        # Section 1: crossing a 2 cm die takes over 25 cycles.
        assert TECH_45NM.conventional_delay_cycles(2.0e-2) > 25


class TestEnergyModels:
    def test_conventional_energy_scales_with_length(self):
        short = TECH_45NM.conventional_energy_per_bit(1e-3)
        long = TECH_45NM.conventional_energy_per_bit(10e-3)
        assert long == pytest.approx(10 * short)

    def test_conventional_energy_scales_with_activity(self):
        full = TECH_45NM.conventional_energy_per_bit(1e-2, alpha=1.0)
        half = TECH_45NM.conventional_energy_per_bit(1e-2, alpha=0.5)
        assert half == pytest.approx(full / 2)

    def test_tl_energy_matched_source_default(self):
        explicit = TECH_45NM.tl_energy_per_bit(50.0, rd_ohm=50.0)
        default = TECH_45NM.tl_energy_per_bit(50.0)
        assert default == pytest.approx(explicit)

    def test_tl_energy_decreases_with_impedance(self):
        assert TECH_45NM.tl_energy_per_bit(80.0) < TECH_45NM.tl_energy_per_bit(30.0)

    def test_tl_energy_formula(self):
        # E = t_b * V^2 / (R_D + Z_0) per the paper's equation.
        z0 = 40.0
        expected = TECH_45NM.cycle_s * TECH_45NM.vdd ** 2 / (2 * z0)
        assert TECH_45NM.tl_energy_per_bit(z0) == pytest.approx(expected)

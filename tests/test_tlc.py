"""Tests for the base Transmission Line Cache design."""

import pytest

from repro.core.config import TLC_BASE
from repro.core.tlc import TransmissionLineCache
from repro.sim.memory import MainMemory


def make_tlc(**kwargs):
    return TransmissionLineCache(memory=MainMemory(), **kwargs)


def addr_for_bank(tlc, bank, set_index=0, tag=1):
    return tlc.addr_map.rebuild(tag, set_index, bank)


class TestConstruction:
    def test_32_banks_of_512kb(self):
        tlc = make_tlc()
        assert len(tlc.banks) == 32
        sets = tlc.banks[0].num_sets
        assert sets * 4 * 64 == 512 * 1024

    def test_rejects_wrong_config_kind(self):
        from repro.core.config import SNUCA2
        with pytest.raises(ValueError):
            TransmissionLineCache(config=SNUCA2)


class TestUncontendedLatency:
    def test_range_matches_table2(self):
        tlc = make_tlc()
        latencies = {tlc.uncontended_latency(addr_for_bank(tlc, b))
                     for b in range(32)}
        assert min(latencies) == 10
        assert max(latencies) == 16

    def test_read_hit_latency_equals_prediction(self):
        tlc = make_tlc()
        addr = addr_for_bank(tlc, 0)
        tlc.install(addr)
        outcome = tlc.access(addr, time=1000)
        assert outcome.hit
        assert outcome.lookup_latency == tlc.uncontended_latency(addr)
        assert outcome.predictable

    def test_far_bank_slower_than_near_bank(self):
        tlc = make_tlc()
        # Pairs in the die's central rows (pair 3 -> banks 6/7) land at
        # the controller's centre; corner pairs (pair 0 -> banks 0/1)
        # pay the full internal wire delay.
        near, far = addr_for_bank(tlc, 6), addr_for_bank(tlc, 0)
        tlc.install(near)
        tlc.install(far)
        near_out = tlc.access(near, time=0)
        far_out = tlc.access(far, time=1000)
        assert far_out.lookup_latency > near_out.lookup_latency


class TestReadPath:
    def test_miss_goes_to_memory(self):
        tlc = make_tlc()
        outcome = tlc.access(0x10000, time=0)
        assert not outcome.hit
        assert outcome.complete_time >= tlc.memory.latency_cycles

    def test_miss_then_hit(self):
        tlc = make_tlc()
        tlc.access(0x10000, time=0)
        assert tlc.access(0x10000, time=1000).hit

    def test_exactly_one_bank_accessed_per_request(self):
        tlc = make_tlc()
        for i in range(10):
            tlc.access(i * 64, time=i * 100)
        assert tlc.banks_accessed_per_request == 1.0

    def test_miss_determination_latency_is_uncontended(self):
        tlc = make_tlc()
        addr = addr_for_bank(tlc, 3)
        outcome = tlc.access(addr, time=0)
        assert outcome.lookup_latency == tlc.uncontended_latency(addr)
        assert outcome.predictable


class TestContention:
    def test_same_bank_back_to_back_contends(self):
        tlc = make_tlc()
        a = addr_for_bank(tlc, 0, set_index=0)
        b = addr_for_bank(tlc, 0, set_index=1)
        tlc.install(a)
        tlc.install(b)
        tlc.access(a, time=0)
        second = tlc.access(b, time=1)
        assert second.lookup_latency > tlc.uncontended_latency(b)
        assert not second.predictable

    def test_different_pairs_do_not_contend(self):
        tlc = make_tlc()
        a = addr_for_bank(tlc, 0)
        b = addr_for_bank(tlc, 10)
        tlc.install(a)
        tlc.install(b)
        tlc.access(a, time=0)
        second = tlc.access(b, time=1)
        assert second.predictable

    def test_paired_banks_share_links(self):
        tlc = make_tlc()
        a = addr_for_bank(tlc, 0)
        b = addr_for_bank(tlc, 1)  # same pair, different bank
        tlc.install(a)
        tlc.install(b)
        tlc.access(a, time=0)
        second = tlc.access(b, time=1)
        # The response link is shared, so the second hit queues behind
        # the first block transfer even though the banks differ.
        assert second.lookup_latency > tlc.uncontended_latency(b)


class TestWritePath:
    def test_write_needs_no_tag_comparison(self):
        """Stores complete when the data lands at the bank."""
        tlc = make_tlc()
        outcome = tlc.access(0x4000, time=0, write=True)
        assert outcome.write
        assert outcome.predictable
        assert outcome.complete_time < 50

    def test_write_allocates(self):
        tlc = make_tlc()
        tlc.access(0x4000, time=0, write=True)
        assert tlc.access(0x4000, time=100).hit

    def test_write_hit_marks_dirty_then_evicts_with_writeback(self):
        tlc = make_tlc()
        base = addr_for_bank(tlc, 0, set_index=0)
        stride = tlc.addr_map.rebuild(1, 0, 0) - tlc.addr_map.rebuild(0, 0, 0)
        tlc.access(base, time=0, write=True)
        for i in range(1, 5):  # fill the 4-way set and evict
            tlc.access(base + i * stride, time=i * 1000)
        assert tlc.stats["writebacks"] == 1
        assert tlc.memory.stats["writes"] == 1


class TestStatsAndEnergy:
    def test_lookup_histogram_counts_read_hits_only(self):
        tlc = make_tlc()
        tlc.access(0x0, time=0)               # read miss
        tlc.access(0x40, time=500, write=True)  # write
        tlc.access(0x0, time=1000)            # read hit
        assert tlc.lookup_latencies.count == 1

    def test_network_energy_accumulates(self):
        tlc = make_tlc()
        tlc.access(0x0, time=0)
        first = tlc.network_energy_j()
        tlc.access(0x40, time=1000)
        assert tlc.network_energy_j() > first > 0

    def test_utilization_positive_after_traffic(self):
        tlc = make_tlc()
        tlc.install(0x0)
        tlc.access(0x0, time=0)
        assert tlc.link_utilization(100) > 0

    def test_reset_stats_preserves_contents(self):
        tlc = make_tlc()
        tlc.access(0x0, time=0)
        tlc.reset_stats()
        assert tlc.stats["requests"] == 0
        assert tlc.network_energy_j() == 0
        assert tlc.access(0x0, time=10_000).hit  # still cached

    def test_install_is_timing_free(self):
        tlc = make_tlc()
        tlc.install(0x1234c0)
        assert tlc.stats["requests"] == 0
        assert tlc.network_energy_j() == 0.0
        assert tlc.access(0x1234c0, time=0).hit

    def test_install_idempotent(self):
        tlc = make_tlc()
        tlc.install(0x40)
        tlc.install(0x40)
        assert tlc.banks[tlc.addr_map.bank_index(0x40)].occupied_blocks == 1

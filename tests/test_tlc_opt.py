"""Tests for the optimized TLC designs (striping + partial tags)."""

import pytest

from repro.core.config import TLC_OPT_350, TLC_OPT_500, TLC_OPT_1000
from repro.core.tlc_opt import OptimizedTLC
from repro.sim.memory import MainMemory


def make(config=TLC_OPT_500):
    return OptimizedTLC(config=config, memory=MainMemory())


def addr_in_group(design, group, set_index=0, tag=1):
    return design.addr_map.rebuild(tag, set_index, group)


class TestStripeGeometry:
    @pytest.mark.parametrize("config,banks_per_block,groups", [
        (TLC_OPT_1000, 2, 8), (TLC_OPT_500, 4, 4), (TLC_OPT_350, 8, 2)])
    def test_group_structure(self, config, banks_per_block, groups):
        design = make(config)
        assert design.stripe_banks == banks_per_block
        assert design.num_groups == groups

    @pytest.mark.parametrize("config", [TLC_OPT_1000, TLC_OPT_500, TLC_OPT_350])
    def test_stripe_banks_on_distinct_pairs(self, config):
        """Slices of one block must return over different pair links so
        they arrive in parallel (the basis of the 12-13 cycle latency)."""
        design = make(config)
        for group in range(design.num_groups):
            pairs = [b // 2 for b in design.banks_for_group(group)]
            assert len(set(pairs)) == len(pairs)

    def test_groups_partition_banks(self):
        design = make(TLC_OPT_500)
        all_banks = sorted(
            b for g in range(design.num_groups) for b in design.banks_for_group(g))
        assert all_banks == list(range(16))

    def test_rejects_wrong_config(self):
        from repro.core.config import TLC_BASE
        with pytest.raises(ValueError):
            OptimizedTLC(config=TLC_BASE)


class TestLatency:
    @pytest.mark.parametrize("config,low,high", [
        (TLC_OPT_1000, 12, 13), (TLC_OPT_500, 12, 12), (TLC_OPT_350, 12, 12)])
    def test_uncontended_range(self, config, low, high):
        design = make(config)
        latencies = {design.uncontended_latency(addr_in_group(design, g))
                     for g in range(design.num_groups)}
        assert min(latencies) == low
        assert max(latencies) == high

    def test_clean_hit_latency_matches_prediction(self):
        design = make()
        addr = addr_in_group(design, 0)
        design.install(addr)
        outcome = design.access(addr, time=100)
        assert outcome.hit
        assert outcome.lookup_latency == design.uncontended_latency(addr)
        assert outcome.predictable

    def test_all_stripe_banks_counted(self):
        design = make(TLC_OPT_350)
        design.access(0x0, time=0)
        assert design.banks_accessed_per_request == 8.0


class TestPartialTagCornerCases:
    def _aliased_tags(self):
        """Two tags sharing the low six bits."""
        return 0x40, 0x80

    def test_false_hit_detected_by_controller(self):
        """A partial match whose full tag differs must become a miss."""
        design = make()
        t1, t2 = self._aliased_tags()
        a = addr_in_group(design, 0, set_index=5, tag=t1)
        b = addr_in_group(design, 0, set_index=5, tag=t2)
        design.install(a)
        outcome = design.access(b, time=0)
        assert not outcome.hit
        assert design.stats["false_hits"] == 1

    def test_false_hit_resolves_at_normal_latency(self):
        design = make()
        t1, t2 = self._aliased_tags()
        design.install(addr_in_group(design, 0, set_index=5, tag=t1))
        outcome = design.access(addr_in_group(design, 0, set_index=5, tag=t2),
                                time=0)
        assert outcome.lookup_latency == design.uncontended_latency(
            addr_in_group(design, 0))
        assert outcome.predictable

    def test_multiple_matches_require_second_round(self):
        design = make()
        t1, t2 = self._aliased_tags()
        a = addr_in_group(design, 0, set_index=5, tag=t1)
        b = addr_in_group(design, 0, set_index=5, tag=t2)
        design.install(a)
        design.install(b)
        outcome = design.access(a, time=0)
        assert outcome.hit
        assert design.stats["multi_partial_matches"] == 1
        assert not outcome.predictable
        assert outcome.lookup_latency > design.uncontended_latency(a)

    def test_multiple_matches_all_false_is_miss(self):
        design = make()
        t1, t2 = self._aliased_tags()
        design.install(addr_in_group(design, 0, set_index=5, tag=t1))
        design.install(addr_in_group(design, 0, set_index=5, tag=t2))
        third = addr_in_group(design, 0, set_index=5, tag=0xC0)  # same partial
        outcome = design.access(third, time=0)
        assert not outcome.hit

    def test_clean_partial_miss_is_predictable(self):
        design = make()
        outcome = design.access(addr_in_group(design, 0, tag=0x33), time=0)
        assert not outcome.hit
        assert outcome.predictable


class TestReadWritePaths:
    def test_miss_then_hit(self):
        design = make()
        design.access(0x9000, time=0)
        assert design.access(0x9000, time=2000).hit

    def test_write_allocates_dirty(self):
        design = make()
        design.access(0x9000, time=0, write=True)
        group = design.groups[design.addr_map.bank_index(0x9000)]
        set_index = design.addr_map.set_index(0x9000)
        way = group.probe(set_index, design.addr_map.tag(0x9000))
        assert group.dirty_at(set_index, way)

    def test_dirty_eviction_writes_back(self):
        design = make()
        base_set, group = 9, 1
        for tag in range(5):  # 4 ways + 1 (distinct partials)
            design.access(addr_in_group(design, group, base_set, tag + 1),
                          time=tag * 1000, write=True)
        assert design.stats["writebacks"] >= 1
        assert design.memory.stats["writes"] >= 1

    def test_narrower_design_busier_links(self):
        """Fewer lines -> higher utilization for identical traffic."""
        results = {}
        for config in (TLC_OPT_1000, TLC_OPT_350):
            design = make(config)
            for i in range(50):
                design.install(i * 64)
                design.access(i * 64, time=i * 40)
            results[config.name] = design.link_utilization(50 * 40)
        assert results["TLCopt350"] > results["TLCopt1000"]

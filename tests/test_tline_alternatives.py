"""Tests for alternative signalling schemes."""

import pytest

from repro.tline.alternatives import (
    cheapest_at,
    compare_schemes,
    current_mode,
    differential,
    single_ended,
)

Z0 = 36.0


class TestSchemeProperties:
    def test_single_ended_has_no_static_power(self):
        scheme = single_ended(Z0)
        assert scheme.static_power_w == 0.0
        assert scheme.lines_per_bit == 1

    def test_differential_doubles_wires(self):
        assert differential(Z0).lines_per_bit == 2

    def test_differential_improves_noise_immunity(self):
        assert (differential(Z0).relative_noise_immunity
                > single_ended(Z0).relative_noise_immunity)

    def test_current_mode_burns_static_power(self):
        assert current_mode(Z0).static_power_w > 0

    def test_current_mode_low_dynamic_energy(self):
        assert (current_mode(Z0).dynamic_energy_per_bit_j
                < single_ended(Z0).dynamic_energy_per_bit_j)

    def test_utilization_validated(self):
        with pytest.raises(ValueError):
            single_ended(Z0).average_power_w(1.5)


class TestPowerAtUtilization:
    def test_average_power_increases_with_utilization(self):
        scheme = single_ended(Z0)
        assert scheme.average_power_w(0.10) > scheme.average_power_w(0.01)

    def test_idle_single_ended_draws_nothing(self):
        assert single_ended(Z0).average_power_w(0.0) == 0.0

    def test_idle_current_mode_still_burns(self):
        assert current_mode(Z0).average_power_w(0.0) > 0


class TestPapersChoice:
    def test_single_ended_cheapest_at_cache_utilizations(self):
        """Fig. 7: TLC links run at a few percent utilization — where the
        paper says static-biased drivers are unaffordable."""
        for utilization in (0.005, 0.02, 0.05):
            name, _ = cheapest_at(Z0, utilization)
            assert name == "single-ended voltage"

    def test_current_mode_wins_only_on_busy_links(self):
        assert cheapest_at(Z0, 0.95)[0] == "current mode"
        # ...and the crossover sits above the base TLC's <2% regime.
        assert cheapest_at(Z0, 0.02)[0] == "single-ended voltage"

    def test_compare_lists_all_three(self):
        schemes = compare_schemes(Z0, 0.05)
        assert len(schemes) == 3

"""Tests for quasi-static RLC extraction (the Linpar substitute)."""

import math

import numpy as np
import pytest

from repro.tech import TECH_45NM, MU_0, EPS_0, Technology
from repro.tline.extraction import extract
from repro.tline.geometry import TABLE1_LINES, tl_geometry_for_length


@pytest.fixture(scope="module")
def lines():
    return [extract(g) for g in TABLE1_LINES]


class TestStaticParameters:
    def test_lc_product_is_tem(self, lines):
        """Homogeneous dielectric: L*C = mu0*eps0*er exactly."""
        for line in lines:
            expected = MU_0 * EPS_0 * TECH_45NM.dielectric_er
            assert line.l_per_m * line.c_per_m == pytest.approx(expected)

    def test_impedance_in_practical_range(self, lines):
        for line in lines:
            assert 20.0 < line.z0 < 80.0

    def test_velocity_matches_dielectric(self, lines):
        expected = TECH_45NM.wave_velocity
        for line in lines:
            # rel=1e-3: C_LIGHT is rounded to 2.998e8 in repro.tech.
            assert line.velocity == pytest.approx(expected, rel=1e-3)

    def test_flight_time_under_a_cycle(self, lines):
        """Every Table 1 line flies in less than one 10 GHz cycle."""
        for line in lines:
            assert line.flight_time < TECH_45NM.cycle_s

    def test_dc_resistance_formula(self, lines):
        g = TABLE1_LINES[0]
        expected = TECH_45NM.resistivity / (g.width * g.thickness)
        assert lines[0].r_dc_per_m == pytest.approx(expected)

    def test_wider_lines_have_lower_resistance(self, lines):
        r = [line.r_dc_per_m for line in lines]
        assert r[0] > r[1] > r[2]


class TestSkinEffect:
    def test_skin_depth_decreases_with_frequency(self, lines):
        line = lines[0]
        assert line.skin_depth(1e9) > line.skin_depth(10e9)

    def test_skin_depth_value_at_10ghz(self, lines):
        # delta = sqrt(rho / (pi f mu)): ~0.75 um for copper at 10 GHz.
        delta = float(lines[0].skin_depth(10e9))
        assert 0.5e-6 < delta < 1.1e-6

    def test_resistance_rises_with_frequency(self, lines):
        line = lines[0]
        assert float(line.r_per_m(10e9)) > float(line.r_per_m(1e8))

    def test_low_frequency_resistance_near_dc(self, lines):
        line = lines[0]
        # At low frequency the conduction shell fills the conductor.
        from repro.tline.extraction import RETURN_PATH_FACTOR
        assert float(line.r_per_m(1e3)) == pytest.approx(
            RETURN_PATH_FACTOR * line.r_dc_per_m, rel=1e-6)

    def test_vectorized_resistance(self, lines):
        freqs = np.array([1e8, 1e9, 1e10])
        r = lines[0].r_per_m(freqs)
        assert r.shape == (3,)
        assert r[0] <= r[1] <= r[2]


class TestPropagationConstant:
    def test_attenuation_grows_with_frequency(self, lines):
        line = lines[-1]
        assert line.attenuation_np(10e9) > line.attenuation_np(1e9)

    def test_attenuation_grows_with_length(self):
        short = extract(tl_geometry_for_length(0.005))
        long = extract(tl_geometry_for_length(0.013))
        assert long.attenuation_np(5e9) > short.attenuation_np(5e9)

    def test_gamma_imaginary_part_is_phase(self, lines):
        """At high frequency, Im(gamma) ~ omega/velocity."""
        line = lines[0]
        freq = 20e9
        beta = float(np.imag(line.gamma(freq)))
        expected = 2 * math.pi * freq / line.velocity
        assert beta == pytest.approx(expected, rel=0.05)

    def test_z0_complex_converges_to_lossless(self, lines):
        line = lines[0]
        z_hi = complex(line.z0_complex(50e9))
        assert abs(z_hi) == pytest.approx(line.z0, rel=0.1)

    def test_lc_transition_in_ghz_range(self, lines):
        """The paper targets lines that are inductive at 10 GHz."""
        for line in lines:
            transition = line.lc_transition_hz()
            assert 0.5e9 < transition < 10e9


class TestDesignPointSensitivity:
    def test_higher_er_slows_line(self):
        slow_tech = Technology(dielectric_er=3.9)  # conventional oxide
        fast = extract(TABLE1_LINES[0], TECH_45NM)
        slow = extract(TABLE1_LINES[0], slow_tech)
        assert slow.velocity < fast.velocity

    def test_geometry_monotonicity(self):
        """Wider and better-spaced lines -> higher impedance is NOT
        guaranteed, but capacitance per metre must increase with w/h."""
        import dataclasses
        narrow = TABLE1_LINES[0]
        wide = dataclasses.replace(narrow, width=narrow.width * 2)
        assert extract(wide).c_per_m > extract(narrow).c_per_m

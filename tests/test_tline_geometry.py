"""Tests for wire cross-section geometry (paper Table 1 / Figure 3)."""

import dataclasses

import pytest

from repro.tline.geometry import (
    CONVENTIONAL_GLOBAL_WIRE,
    TABLE1_LINES,
    WireGeometry,
    tl_geometry_for_length,
)


class TestTable1:
    def test_three_length_classes(self):
        assert len(TABLE1_LINES) == 3
        assert [g.length for g in TABLE1_LINES] == pytest.approx(
            [0.009, 0.011, 0.013])

    def test_published_dimensions(self):
        by_name = {g.name: g for g in TABLE1_LINES}
        short = by_name["tl-0.9cm"]
        assert short.width == pytest.approx(2.0e-6)
        assert short.spacing == pytest.approx(2.0e-6)
        assert short.height == pytest.approx(1.75e-6)
        assert short.thickness == pytest.approx(3.0e-6)
        long = by_name["tl-1.3cm"]
        assert long.width == pytest.approx(3.0e-6)
        assert long.spacing == pytest.approx(3.0e-6)

    def test_longer_lines_are_wider(self):
        widths = [g.width for g in TABLE1_LINES]
        assert widths == sorted(widths)

    def test_constant_thickness_and_height(self):
        assert len({g.thickness for g in TABLE1_LINES}) == 1
        assert len({g.height for g in TABLE1_LINES}) == 1


class TestGeometryProperties:
    def test_pitch_includes_shield(self):
        g = TABLE1_LINES[0]
        assert g.pitch == pytest.approx(2 * (g.width + g.spacing))

    def test_cross_section_area(self):
        g = TABLE1_LINES[0]
        assert g.cross_section_area == pytest.approx(2.0e-6 * 3.0e-6)

    def test_aspect_ratio(self):
        g = TABLE1_LINES[0]
        assert g.aspect_ratio == pytest.approx(1.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            WireGeometry("bad", length=0.01, width=-1e-6, spacing=1e-6,
                         height=1e-6, thickness=1e-6)


class TestFigure3Comparison:
    def test_tl_much_larger_than_conventional(self):
        """Figure 3: transmission lines dwarf conventional global wires."""
        tl = TABLE1_LINES[0]
        conv = CONVENTIONAL_GLOBAL_WIRE
        assert tl.width / conv.width > 5
        assert tl.thickness / conv.thickness > 5
        assert tl.cross_section_area / conv.cross_section_area > 25


class TestGeometryForLength:
    def test_short_lengths_use_smallest_class(self):
        g = tl_geometry_for_length(0.005)
        assert g.width == pytest.approx(2.0e-6)
        assert g.length == pytest.approx(0.005)

    def test_boundary_lengths(self):
        assert tl_geometry_for_length(0.009).width == pytest.approx(2.0e-6)
        assert tl_geometry_for_length(0.0091).width == pytest.approx(2.5e-6)
        assert tl_geometry_for_length(0.013).width == pytest.approx(3.0e-6)

    def test_too_long_raises(self):
        with pytest.raises(ValueError, match="1.40 cm"):
            tl_geometry_for_length(0.014)

    def test_non_positive_raises(self):
        with pytest.raises(ValueError):
            tl_geometry_for_length(0.0)

    def test_returns_new_instance_with_requested_length(self):
        g = tl_geometry_for_length(0.010)
        assert g.length == pytest.approx(0.010)
        # Table 1 entries themselves are untouched.
        assert TABLE1_LINES[1].length == pytest.approx(0.011)

"""Tests for crosstalk / shielding analysis."""

import pytest

from repro.tline.geometry import TABLE1_LINES
from repro.tline.noise import (
    SHIELD_RESIDUE,
    analyze_crosstalk,
    mutual_capacitance,
    shielding_improvement,
)


class TestMutualCapacitance:
    def test_shield_reduces_coupling(self):
        g = TABLE1_LINES[0]
        assert (mutual_capacitance(g, shielded=True)
                < mutual_capacitance(g, shielded=False) * 0.1)

    def test_residue_fraction(self):
        g = TABLE1_LINES[0]
        ratio = (mutual_capacitance(g, shielded=True)
                 / mutual_capacitance(g, shielded=False))
        assert ratio == pytest.approx(SHIELD_RESIDUE)

    def test_wider_spacing_less_coupling(self):
        narrow, wide = TABLE1_LINES[0], TABLE1_LINES[2]
        assert (mutual_capacitance(wide, shielded=False)
                < mutual_capacitance(narrow, shielded=False) * 1.05)


class TestCrosstalkAnalysis:
    @pytest.mark.parametrize("geometry", TABLE1_LINES, ids=lambda g: g.name)
    def test_shielded_lines_pass_noise_check(self, geometry):
        """The paper's claim: shielded single-ended signalling survives
        the noisy environment."""
        report = analyze_crosstalk(geometry, shielded=True)
        assert report.passes
        assert report.worst_case_noise_v < 0.1 * 0.9  # well under 10 % Vdd

    @pytest.mark.parametrize("geometry", TABLE1_LINES, ids=lambda g: g.name)
    def test_unshielded_lines_are_marginal_or_fail(self, geometry):
        shielded = analyze_crosstalk(geometry, shielded=True)
        unshielded = analyze_crosstalk(geometry, shielded=False)
        assert unshielded.worst_case_noise_v > 5 * shielded.worst_case_noise_v

    def test_forward_coupling_cancels_in_tem(self):
        report = analyze_crosstalk(TABLE1_LINES[0])
        assert report.forward_coefficient == pytest.approx(0.0, abs=1e-12)

    def test_margin_shrinks_with_attenuation(self):
        strong = analyze_crosstalk(TABLE1_LINES[0],
                                   received_amplitude_fraction=0.9)
        weak = analyze_crosstalk(TABLE1_LINES[0],
                                 received_amplitude_fraction=0.75)
        assert weak.noise_margin_v < strong.noise_margin_v

    def test_backward_coefficient_formula(self):
        report = analyze_crosstalk(TABLE1_LINES[1], shielded=False)
        ratio = report.cm_per_m / report.c_per_m
        assert report.backward_coefficient == pytest.approx(ratio / 2)


class TestShieldingImprovement:
    def test_improvement_is_the_residue_inverse(self):
        improvement = shielding_improvement(TABLE1_LINES[0])
        assert improvement == pytest.approx(1.0 / SHIELD_RESIDUE)

    def test_improvement_substantial_for_all_classes(self):
        for geometry in TABLE1_LINES:
            assert shielding_improvement(geometry) > 10

"""Tests for the paper's two dynamic-power equations and the crossover."""

import pytest

from repro.tech import TECH_45NM
from repro.tline.power import (
    conventional_dynamic_power,
    conventional_energy_per_bit,
    crossover_length,
    transmission_line_dynamic_power,
    transmission_line_energy_per_bit,
)


class TestConventionalPower:
    def test_formula(self):
        """P = alpha * C * V^2 * f."""
        cap = 2e-12
        expected = 0.5 * cap * TECH_45NM.vdd ** 2 * TECH_45NM.frequency_hz
        assert conventional_dynamic_power(cap, alpha=0.5) == pytest.approx(expected)

    def test_scales_with_activity(self):
        full = conventional_dynamic_power(1e-12, alpha=1.0)
        half = conventional_dynamic_power(1e-12, alpha=0.5)
        assert half == pytest.approx(full / 2)

    def test_negative_capacitance_rejected(self):
        with pytest.raises(ValueError):
            conventional_dynamic_power(-1e-12)

    def test_energy_per_bit_linear_in_length(self):
        assert conventional_energy_per_bit(2e-2) == pytest.approx(
            2 * conventional_energy_per_bit(1e-2))


class TestTransmissionLinePower:
    def test_formula(self):
        """P = alpha * t_b * V^2 / (R_D + Z_0) * f."""
        z0 = 50.0
        expected = (TECH_45NM.cycle_s * TECH_45NM.vdd ** 2 / (2 * z0)
                    * TECH_45NM.frequency_hz)
        assert transmission_line_dynamic_power(z0) == pytest.approx(expected)

    def test_matched_source_default(self):
        assert transmission_line_dynamic_power(40.0) == pytest.approx(
            transmission_line_dynamic_power(40.0, rd_ohm=40.0))

    def test_higher_source_resistance_lowers_power(self):
        assert (transmission_line_dynamic_power(40.0, rd_ohm=120.0)
                < transmission_line_dynamic_power(40.0, rd_ohm=40.0))

    def test_invalid_impedance(self):
        with pytest.raises(ValueError):
            transmission_line_dynamic_power(0.0)

    def test_shorter_pulse_less_energy(self):
        full = transmission_line_energy_per_bit(50.0, bit_time_s=100e-12)
        half = transmission_line_energy_per_bit(50.0, bit_time_s=50e-12)
        assert half == pytest.approx(full / 2)


class TestCrossover:
    def test_paper_inequality_at_crossover(self):
        """At the crossover length, t_b/(2*Z0) == C(length)."""
        z0 = 50.0
        length = crossover_length(z0)
        cap = TECH_45NM.conventional_wire_cap_per_m * length
        assert cap == pytest.approx(TECH_45NM.cycle_s / (2 * z0))

    def test_crossover_is_sub_centimetre_scale(self):
        """The paper concludes long (~1 cm) global links favour
        transmission lines; the crossover must land well below the
        1.3 cm maximum TLC run."""
        length = crossover_length(35.0)
        assert 1e-3 < length < 1.3e-2

    def test_energy_comparison_brackets_crossover(self):
        z0 = 35.0
        cross = crossover_length(z0)
        tl = transmission_line_energy_per_bit(z0)
        assert conventional_energy_per_bit(cross * 2) > tl
        assert conventional_energy_per_bit(cross / 2) < tl

    def test_higher_impedance_crosses_earlier(self):
        assert crossover_length(80.0) < crossover_length(30.0)

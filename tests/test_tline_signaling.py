"""Tests for the signalling acceptance criteria (Section 5's physical flow)."""

import pytest

from repro.tech import TECH_45NM, Technology
from repro.tline.geometry import TABLE1_LINES
from repro.tline.signaling import (
    MIN_AMPLITUDE_FRACTION,
    MIN_WIDTH_FRACTION,
    evaluate_link,
)


class TestPaperCriteria:
    def test_thresholds_match_paper(self):
        assert MIN_AMPLITUDE_FRACTION == 0.75
        assert MIN_WIDTH_FRACTION == 0.40

    @pytest.mark.parametrize("geometry", TABLE1_LINES, ids=lambda g: g.name)
    def test_every_table1_line_is_usable(self, geometry):
        """The paper's design intent: all Table 1 lines pass at 10 GHz."""
        report = evaluate_link(geometry.length)
        assert report.meets_amplitude, (
            f"{geometry.name}: amplitude {report.amplitude_fraction:.2f}")
        assert report.meets_width, (
            f"{geometry.name}: width {report.width_fraction:.2f}")
        assert report.usable

    @pytest.mark.parametrize("geometry", TABLE1_LINES, ids=lambda g: g.name)
    def test_single_cycle_latency(self, geometry):
        """Table 2's uncontended latencies assume one cycle of flight."""
        report = evaluate_link(geometry.length)
        assert report.latency_cycles == 1


class TestScaling:
    def test_longer_lines_weaker_signal(self):
        short = evaluate_link(0.009)
        long = evaluate_link(0.013)
        assert long.amplitude_fraction < short.amplitude_fraction

    def test_default_geometry_matches_length_class(self):
        report = evaluate_link(0.010)
        assert report.geometry.width == pytest.approx(2.5e-6)

    def test_explicit_geometry_honoured(self):
        report = evaluate_link(0.009, geometry=TABLE1_LINES[2])
        assert report.geometry.width == pytest.approx(3.0e-6)

    def test_undersized_line_fails_criteria(self):
        """A 1.3 cm run on the narrow 0.9 cm geometry class should fail —
        the reason Table 1 widens longer lines."""
        import dataclasses
        skinny = dataclasses.replace(TABLE1_LINES[0], length=0.013)
        report = evaluate_link(0.013, geometry=skinny)
        assert report.amplitude_fraction < evaluate_link(0.013).amplitude_fraction

    def test_lower_frequency_design_point(self):
        """At 5 GHz the same lines have two cycles of slack per bit and
        still pass."""
        tech = Technology(name="45nm-5GHz", frequency_hz=5e9)
        report = evaluate_link(0.013, tech=tech)
        assert report.usable
        assert report.latency_cycles == 1

"""Tests for frequency-domain pulse propagation (HSPICE W-element substitute)."""

import numpy as np
import pytest

from repro.tech import TECH_45NM
from repro.tline.extraction import extract
from repro.tline.geometry import TABLE1_LINES, tl_geometry_for_length
from repro.tline.wave import propagate_pulse, trapezoid_pulse


class TestTrapezoidPulse:
    def test_flat_top_at_vdd(self):
        t = np.linspace(0, 1e-9, 2000)
        v = trapezoid_pulse(t, vdd=1.0, start_s=0.2e-9, bit_time_s=0.3e-9,
                            rise_s=0.02e-9)
        mid = (t > 0.25e-9) & (t < 0.45e-9)
        assert np.allclose(v[mid], 1.0)

    def test_zero_before_start(self):
        t = np.linspace(0, 1e-9, 1000)
        v = trapezoid_pulse(t, 1.0, start_s=0.5e-9, bit_time_s=0.2e-9,
                            rise_s=0.05e-9)
        assert np.allclose(v[t < 0.5e-9], 0.0)

    def test_returns_to_zero(self):
        t = np.linspace(0, 2e-9, 2000)
        v = trapezoid_pulse(t, 1.0, start_s=0.1e-9, bit_time_s=0.2e-9,
                            rise_s=0.02e-9)
        assert np.allclose(v[t > 0.5e-9], 0.0)

    def test_width_at_half_amplitude_is_bit_time(self):
        t = np.linspace(0, 1e-9, 20000)
        bit = 0.3e-9
        v = trapezoid_pulse(t, 1.0, 0.1e-9, bit, rise_s=0.03e-9)
        above = t[v >= 0.5]
        assert (above[-1] - above[0]) == pytest.approx(bit, rel=0.05)


class TestPropagation:
    @pytest.fixture(scope="class")
    def short_line(self):
        return extract(TABLE1_LINES[0])

    def test_delay_close_to_flight_time(self, short_line):
        result = propagate_pulse(short_line, vdd=1.0, bit_time_s=100e-12)
        assert result.delay_s >= short_line.flight_time * 0.9
        assert result.delay_s <= short_line.flight_time + 40e-12

    def test_received_amplitude_below_drive(self, short_line):
        result = propagate_pulse(short_line, vdd=1.0, bit_time_s=100e-12)
        assert 0.0 < result.amplitude_v <= 1.05  # small ringing tolerated

    def test_longer_line_attenuates_more(self):
        short = extract(tl_geometry_for_length(0.005))
        long = extract(tl_geometry_for_length(0.013))
        a_short = propagate_pulse(short, 1.0, 100e-12).amplitude_fraction()
        a_long = propagate_pulse(long, 1.0, 100e-12).amplitude_fraction()
        assert a_long < a_short

    def test_longer_line_has_more_delay(self):
        short = extract(tl_geometry_for_length(0.005))
        long = extract(tl_geometry_for_length(0.013))
        d_short = propagate_pulse(short, 1.0, 100e-12).delay_s
        d_long = propagate_pulse(long, 1.0, 100e-12).delay_s
        assert d_long > d_short

    def test_width_roughly_preserved(self, short_line):
        """Dispersion rounds the pulse but must not swallow it."""
        result = propagate_pulse(short_line, vdd=1.0, bit_time_s=100e-12)
        assert result.width_s > 0.5 * 100e-12

    def test_overdamped_source_reduces_amplitude(self, short_line):
        matched = propagate_pulse(short_line, 1.0, 100e-12)
        weak = propagate_pulse(short_line, 1.0, 100e-12,
                               rd_ohm=5 * short_line.z0)
        assert weak.amplitude_v < matched.amplitude_v

    def test_fraction_helpers(self, short_line):
        result = propagate_pulse(short_line, vdd=0.9, bit_time_s=100e-12)
        assert result.amplitude_fraction() == pytest.approx(
            result.amplitude_v / 0.9)
        assert result.width_fraction(100e-12) == pytest.approx(
            result.width_s / 100e-12)
        assert result.delay_cycles(100e-12) == pytest.approx(
            result.delay_s / 100e-12)

    def test_deterministic(self, short_line):
        a = propagate_pulse(short_line, 1.0, 100e-12)
        b = propagate_pulse(short_line, 1.0, 100e-12)
        assert np.array_equal(a.received_v, b.received_v)

"""Tests for trace records and the save/load format."""

import pytest
from hypothesis import given, strategies as st

from repro.workloads.trace import Reference, load_trace, save_trace


references = st.lists(
    st.builds(
        Reference,
        gap=st.integers(min_value=0, max_value=10_000),
        addr=st.integers(min_value=0, max_value=2**46).map(lambda a: a & ~63),
        write=st.booleans(),
        dependent=st.booleans(),
    ),
    max_size=200,
)


class TestReference:
    def test_fields(self):
        r = Reference(5, 0x1000, True, False)
        assert r.gap == 5
        assert r.addr == 0x1000
        assert r.write and not r.dependent

    def test_tuple_compatible(self):
        gap, addr, write, dep = Reference(1, 2, False, True)
        assert (gap, addr, write, dep) == (1, 2, False, True)


class TestSaveLoad:
    def test_roundtrip_small(self, tmp_path):
        path = str(tmp_path / "t.trace")
        trace = [Reference(3, 0x40, False, True), Reference(9, 0x80, True, False)]
        assert save_trace(path, trace) == 2
        assert load_trace(path) == trace

    def test_blank_lines_and_comments_skipped(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_text("# a comment\n\n5 40 0 1\n")
        assert load_trace(str(path)) == [Reference(5, 0x40, False, True)]

    def test_malformed_line_raises_with_location(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_text("5 40 0\n")
        with pytest.raises(ValueError, match=":1:"):
            load_trace(str(path))

    @given(references)
    def test_roundtrip_property(self, trace):
        import io, os, tempfile
        fd, path = tempfile.mkstemp()
        os.close(fd)
        try:
            save_trace(path, trace)
            assert load_trace(path) == trace
        finally:
            os.unlink(path)

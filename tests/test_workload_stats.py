"""Tests for trace analysis (footprint, reuse distance, miss prediction)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads.stats import (
    footprint,
    mixture_summary,
    predict_miss_ratio,
    reuse_distance_histogram,
    summarize,
)
from repro.workloads.synthetic import TraceSpec, generate_trace
from repro.workloads.trace import Reference


def refs(blocks, write=False):
    return [Reference(10, b * 64, write, False) for b in blocks]


class TestFootprint:
    def test_counts_unique_blocks(self):
        assert footprint(refs([1, 2, 2, 3])) == 3 * 64

    def test_sub_block_addresses_merge(self):
        trace = [Reference(1, 0, False, False), Reference(1, 32, False, False)]
        assert footprint(trace) == 64

    def test_empty(self):
        assert footprint([]) == 0


class TestReuseDistance:
    def test_first_touches_are_cold(self):
        hist = reuse_distance_histogram(refs([1, 2, 3]))
        assert hist == {None: 3}

    def test_immediate_rereference_is_distance_zero(self):
        hist = reuse_distance_histogram(refs([1, 1]))
        assert hist[0] == 1

    def test_classic_stack_distances(self):
        # a b c a : a's reuse distance is 2 (b and c in between).
        hist = reuse_distance_histogram(refs([1, 2, 3, 1]))
        assert hist[2] == 1
        assert hist[None] == 3

    def test_repeated_scan(self):
        # Scanning N blocks twice gives every reuse distance N-1.
        blocks = list(range(5)) * 2
        hist = reuse_distance_histogram(refs(blocks))
        assert hist[4] == 5

    def test_distances_beyond_cap_fold_to_cold(self):
        blocks = list(range(10)) + [0]
        hist = reuse_distance_histogram(refs(blocks), max_tracked=4)
        assert hist.get(9) is None
        assert hist[None] == 11


class TestMissPrediction:
    def test_fits_entirely(self):
        trace = refs(list(range(8)) * 10)
        # Capacity of 8 blocks: only the 8 cold misses.
        assert predict_miss_ratio(trace, 8 * 64) == pytest.approx(8 / 80)

    def test_thrashing_loop(self):
        """A cyclic scan one block larger than capacity misses always
        under LRU — the classic worst case."""
        trace = refs(list(range(9)) * 10)
        assert predict_miss_ratio(trace, 8 * 64) == 1.0

    def test_empty_trace(self):
        assert predict_miss_ratio([], 1024) == 0.0

    def test_monotone_in_capacity(self):
        spec = TraceSpec(mean_gap=10.0, hot_blocks=2_000, stream_fraction=0.3)
        trace = generate_trace(spec, 4_000, seed=3)
        ratios = [predict_miss_ratio(trace, capacity)
                  for capacity in (16 * 1024, 64 * 1024, 16 * 2**20)]
        assert ratios[0] >= ratios[1] >= ratios[2]

    def test_prediction_tracks_streaming_fraction(self):
        spec = TraceSpec(mean_gap=10.0, hot_blocks=500, stream_fraction=0.7)
        trace = generate_trace(spec, 6_000, seed=1)
        predicted = predict_miss_ratio(trace, 16 * 2**20)
        assert predicted == pytest.approx(0.7, abs=0.1)


class TestSummarize:
    def test_summary_fields(self):
        spec = TraceSpec(mean_gap=20.0, hot_blocks=100, write_fraction=0.4)
        trace = generate_trace(spec, 2_000, seed=0)
        summary = summarize(trace)
        assert summary.references == 2_000
        assert summary.write_fraction == pytest.approx(0.4, abs=0.05)
        assert summary.l2_refs_per_kinstr == pytest.approx(50.0, rel=0.1)
        assert summary.footprint_bytes <= 100 * 64

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_as_row_length_stable(self):
        spec = TraceSpec(mean_gap=20.0, hot_blocks=64)
        summary = summarize(generate_trace(spec, 500, seed=0))
        assert len(summary.as_row()) == 7


class TestMixtureSummary:
    def test_shares_match_spec(self):
        spec = TraceSpec(mean_gap=10.0, hot_blocks=1_000,
                         stream_fraction=0.3, cold_fraction=0.2,
                         scatter=False)
        trace = generate_trace(spec, 8_000, seed=2)
        mix = mixture_summary(trace)
        assert mix["stream"] == pytest.approx(0.3, abs=0.03)
        assert mix["cold"] == pytest.approx(0.2, abs=0.03)
        assert mix["hot"] == pytest.approx(0.5, abs=0.03)

    def test_empty(self):
        assert mixture_summary([]) == {"hot": 0.0, "stream": 0.0, "cold": 0.0}


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(0, 30), min_size=1, max_size=300))
def test_stack_distance_matches_reference(blocks):
    """Property: the histogram agrees with a naive stack simulation."""
    trace = refs(blocks)
    hist = reuse_distance_histogram(trace)

    stack = []
    expected = {}
    for b in blocks:
        if b in stack:
            d = len(stack) - 1 - stack.index(b)
            stack.remove(b)
        else:
            d = None
        stack.append(b)
        expected[d] = expected.get(d, 0) + 1
    assert hist == expected
